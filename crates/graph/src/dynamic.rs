//! Mutable delta-overlay over an immutable CSR [`DiGraph`].
//!
//! The paper's index is built once over a static graph, but a serving system
//! sees a mutation stream. [`DynamicGraph`] layers an edge-update log and a
//! delta overlay (inserted / removed edge sets) on top of a frozen CSR base:
//! adjacency questions merge the base with the overlay, and
//! [`DynamicGraph::snapshot`] / [`DynamicGraph::compact`] re-materialize a
//! CSR in `O(m + Δ)` by merging the base's sorted edge stream with the
//! (sorted) overlay — no global re-sort.
//!
//! Vertex growth is supported: inserting an edge whose endpoint is outside
//! the current vertex range grows the vertex set, exactly like
//! [`crate::GraphBuilder::add_edge`].

use crate::csr::DiGraph;
use crate::vertex::VertexId;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One logged change to the edge set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeUpdate {
    /// Insert the directed edge `(u, v)`.
    Insert(VertexId, VertexId),
    /// Remove the directed edge `(u, v)`.
    Remove(VertexId, VertexId),
}

impl EdgeUpdate {
    /// The edge endpoints `(u, v)` of this update.
    pub fn endpoints(self) -> (VertexId, VertexId) {
        match self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v) => (u, v),
        }
    }

    /// True for [`EdgeUpdate::Insert`].
    pub fn is_insert(self) -> bool {
        matches!(self, EdgeUpdate::Insert(..))
    }
}

impl std::fmt::Display for EdgeUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeUpdate::Insert(u, v) => write!(f, "+ {u} {v}"),
            EdgeUpdate::Remove(u, v) => write!(f, "- {u} {v}"),
        }
    }
}

/// A directed graph that accepts edge insertions and removals by keeping a
/// delta overlay over an immutable CSR base.
///
/// Self-loops are rejected (the paper's graphs are simple) and duplicate
/// inserts / removals of absent edges are no-ops, so the structure always
/// describes a simple directed graph.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    /// The frozen CSR base, shared so compaction can hand out the compacted
    /// graph without copying it (readers hold the `Arc`).
    base: Arc<DiGraph>,
    /// Vertex count; may exceed the base's when inserts grew the vertex set.
    n: usize,
    /// Edges present in the overlay but not the base, as `(u, v)`.
    added: BTreeSet<(u32, u32)>,
    /// The same added edges keyed `(v, u)` for in-neighbour merges.
    added_rev: BTreeSet<(u32, u32)>,
    /// Base edges masked out by the overlay, as `(u, v)`.
    removed: BTreeSet<(u32, u32)>,
    /// The same removed edges keyed `(v, u)`.
    removed_rev: BTreeSet<(u32, u32)>,
    /// Every applied (non-no-op) update since construction or the last
    /// [`DynamicGraph::take_log`], in application order.
    log: Vec<EdgeUpdate>,
}

impl DynamicGraph {
    /// Wraps a frozen CSR graph with an empty overlay.
    pub fn new(base: DiGraph) -> Self {
        let n = base.vertex_count();
        DynamicGraph {
            base: Arc::new(base),
            n,
            added: BTreeSet::new(),
            added_rev: BTreeSet::new(),
            removed: BTreeSet::new(),
            removed_rev: BTreeSet::new(),
            log: Vec::new(),
        }
    }

    /// Current number of vertices (base plus growth from inserts).
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Current number of edges (base minus removed plus added).
    pub fn edge_count(&self) -> usize {
        self.base.edge_count() - self.removed.len() + self.added.len()
    }

    /// Number of overlay entries not yet folded into the base.
    pub fn delta_len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// The frozen base graph the overlay applies to.
    pub fn base(&self) -> &DiGraph {
        &self.base
    }

    /// A shared handle to the frozen base — after [`DynamicGraph::compact`],
    /// this is the materialized current graph, with no extra copy.
    pub fn shared_base(&self) -> Arc<DiGraph> {
        Arc::clone(&self.base)
    }

    /// The applied-update log since construction or the last
    /// [`DynamicGraph::take_log`].
    pub fn log(&self) -> &[EdgeUpdate] {
        &self.log
    }

    /// Drains and returns the update log.
    pub fn take_log(&mut self) -> Vec<EdgeUpdate> {
        std::mem::take(&mut self.log)
    }

    /// Grows the vertex set to at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
        }
    }

    /// Whether the directed edge `(u, v)` currently exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if self.added.contains(&(u.0, v.0)) {
            return true;
        }
        if self.removed.contains(&(u.0, v.0)) {
            return false;
        }
        u.index() < self.base.vertex_count()
            && v.index() < self.base.vertex_count()
            && self.base.has_edge(u, v)
    }

    /// Inserts the directed edge `(u, v)`, growing the vertex set on demand.
    ///
    /// Returns `false` (a no-op) for self-loops and edges already present.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        self.ensure_vertices(u.index().max(v.index()) + 1);
        if self.has_edge(u, v) {
            return false;
        }
        if !self.removed.remove(&(u.0, v.0)) {
            self.added.insert((u.0, v.0));
            self.added_rev.insert((v.0, u.0));
        } else {
            self.removed_rev.remove(&(v.0, u.0));
        }
        self.log.push(EdgeUpdate::Insert(u, v));
        true
    }

    /// Removes the directed edge `(u, v)`.
    ///
    /// Returns `false` (a no-op) if the edge is not present.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        if !self.added.remove(&(u.0, v.0)) {
            self.removed.insert((u.0, v.0));
            self.removed_rev.insert((v.0, u.0));
        } else {
            self.added_rev.remove(&(v.0, u.0));
        }
        self.log.push(EdgeUpdate::Remove(u, v));
        true
    }

    /// Applies one logged update, returning whether it changed the edge set.
    pub fn apply(&mut self, update: EdgeUpdate) -> bool {
        match update {
            EdgeUpdate::Insert(u, v) => self.insert_edge(u, v),
            EdgeUpdate::Remove(u, v) => self.remove_edge(u, v),
        }
    }

    /// Out-neighbours of `v` under the overlay, sorted by id.
    pub fn out_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.merged_neighbors(v, true)
    }

    /// In-neighbours of `v` under the overlay, sorted by id.
    pub fn in_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.merged_neighbors(v, false)
    }

    fn merged_neighbors(&self, v: VertexId, forward: bool) -> Vec<VertexId> {
        let (base_list, added, removed) = if forward {
            (
                if v.index() < self.base.vertex_count() {
                    self.base.out_neighbors(v)
                } else {
                    &[]
                },
                &self.added,
                &self.removed,
            )
        } else {
            (
                if v.index() < self.base.vertex_count() {
                    self.base.in_neighbors(v)
                } else {
                    &[]
                },
                &self.added_rev,
                &self.removed_rev,
            )
        };
        let overlay = added
            .range((v.0, 0)..=(v.0, u32::MAX))
            .map(|&(_, w)| VertexId(w));
        let kept = base_list
            .iter()
            .copied()
            .filter(|&w| !removed.contains(&(v.0, w.0)));
        // Both streams are sorted; merge them (they are disjoint by
        // construction: an added edge is never also a base edge).
        let mut out = Vec::with_capacity(base_list.len());
        let mut overlay = overlay.peekable();
        for w in kept {
            while overlay.peek().is_some_and(|&o| o < w) {
                out.push(overlay.next().expect("peeked"));
            }
            out.push(w);
        }
        out.extend(overlay);
        out
    }

    /// Materializes the current edge set as a fresh CSR [`DiGraph`] in
    /// `O(m + Δ)` by merging the base's sorted edge stream with the overlay.
    pub fn snapshot(&self) -> DiGraph {
        if self.delta_len() == 0 && self.n == self.base.vertex_count() {
            return (*self.base).clone();
        }
        let mut edges = Vec::with_capacity(self.edge_count());
        let mut added = self.added.iter().copied().peekable();
        for (u, v) in self.base.edges() {
            let e = (u.0, v.0);
            if self.removed.contains(&e) {
                continue;
            }
            while added.peek().is_some_and(|&a| a < e) {
                edges.push(added.next().expect("peeked"));
            }
            edges.push(e);
        }
        edges.extend(added);
        DiGraph::from_sorted_unique_edges(self.n, &edges)
    }

    /// Folds the overlay into the base, leaving an empty delta. The update
    /// log is preserved.
    pub fn compact(&mut self) {
        if self.delta_len() == 0 && self.n == self.base.vertex_count() {
            return;
        }
        self.base = Arc::new(self.snapshot());
        self.added.clear();
        self.added_rev.clear();
        self.removed.clear();
        self.removed_rev.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DynamicGraph {
        DynamicGraph::new(DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]))
    }

    fn ids(list: &[VertexId]) -> Vec<u32> {
        list.iter().map(|v| v.0).collect()
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let mut g = diamond();
        assert!(g.insert_edge(VertexId(3), VertexId(0)));
        assert!(g.has_edge(VertexId(3), VertexId(0)));
        assert_eq!(g.edge_count(), 5);
        assert!(g.remove_edge(VertexId(3), VertexId(0)));
        assert!(!g.has_edge(VertexId(3), VertexId(0)));
        assert_eq!(g.edge_count(), 4);
        // The removed-then-reinserted base edge cancels out of the overlay.
        assert!(g.remove_edge(VertexId(0), VertexId(1)));
        assert!(g.insert_edge(VertexId(0), VertexId(1)));
        assert_eq!(g.delta_len(), 0);
        assert_eq!(g.log().len(), 4);
    }

    #[test]
    fn noops_are_reported_and_unlogged() {
        let mut g = diamond();
        assert!(!g.insert_edge(VertexId(0), VertexId(1))); // already present
        assert!(!g.insert_edge(VertexId(2), VertexId(2))); // self-loop
        assert!(!g.remove_edge(VertexId(3), VertexId(0))); // absent
        assert!(g.log().is_empty());
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn vertex_growth_on_insert() {
        let mut g = diamond();
        assert!(g.insert_edge(VertexId(3), VertexId(6)));
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(ids(&g.out_neighbors(VertexId(3))), vec![6]);
        assert_eq!(ids(&g.in_neighbors(VertexId(6))), vec![3]);
        let snap = g.snapshot();
        assert_eq!(snap.vertex_count(), 7);
        assert!(snap.has_edge(VertexId(3), VertexId(6)));
    }

    #[test]
    fn merged_adjacency_is_sorted_and_masked() {
        let mut g = diamond();
        g.insert_edge(VertexId(0), VertexId(3));
        g.remove_edge(VertexId(0), VertexId(2));
        assert_eq!(ids(&g.out_neighbors(VertexId(0))), vec![1, 3]);
        assert_eq!(ids(&g.in_neighbors(VertexId(3))), vec![0, 1, 2]);
        g.remove_edge(VertexId(2), VertexId(3));
        assert_eq!(ids(&g.in_neighbors(VertexId(3))), vec![0, 1]);
    }

    #[test]
    fn snapshot_matches_overlay_adjacency() {
        let mut g = diamond();
        g.insert_edge(VertexId(3), VertexId(5));
        g.insert_edge(VertexId(0), VertexId(3));
        g.remove_edge(VertexId(1), VertexId(3));
        let snap = g.snapshot();
        assert_eq!(snap.vertex_count(), g.vertex_count());
        assert_eq!(snap.edge_count(), g.edge_count());
        for v in snap.vertices() {
            assert_eq!(snap.out_neighbors(v), g.out_neighbors(v).as_slice(), "{v}");
            assert_eq!(snap.in_neighbors(v), g.in_neighbors(v).as_slice(), "{v}");
        }
    }

    #[test]
    fn compact_folds_overlay_and_keeps_log() {
        let mut g = diamond();
        g.insert_edge(VertexId(2), VertexId(1));
        g.remove_edge(VertexId(0), VertexId(1));
        g.compact();
        assert_eq!(g.delta_len(), 0);
        assert_eq!(g.log().len(), 2);
        assert!(g.has_edge(VertexId(2), VertexId(1)));
        assert!(!g.has_edge(VertexId(0), VertexId(1)));
        assert_eq!(g.take_log().len(), 2);
        assert!(g.log().is_empty());
    }

    #[test]
    fn update_display_and_accessors() {
        let up = EdgeUpdate::Insert(VertexId(1), VertexId(2));
        assert!(up.is_insert());
        assert_eq!(up.endpoints(), (VertexId(1), VertexId(2)));
        assert_eq!(up.to_string(), "+ 1 2");
        assert_eq!(
            EdgeUpdate::Remove(VertexId(3), VertexId(4)).to_string(),
            "- 3 4"
        );
    }
}
