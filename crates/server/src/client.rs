//! A tiny blocking HTTP/1.1 client for the k-reach protocol.
//!
//! Just enough to drive [`crate::start`]-style servers from the
//! `net_throughput` loadgen and the integration tests: keep-alive request /
//! response round-trips with `Content-Length` bodies. Not a general HTTP
//! client.

use crate::http::{read_line_bounded, RequestError, MAX_LINE_BYTES};
use std::io::{BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether the server announced `Connection: close` (the caller must
    /// reconnect before the next request).
    pub close: bool,
    /// Seconds from a `Retry-After` header, when the server sent one
    /// (503 responses do — degraded mode, admission shed).
    pub retry_after: Option<u64>,
}

impl HttpResponse {
    /// The body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the status is 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A blocking keep-alive connection to a k-reach server.
pub struct BlockingClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl BlockingClient {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wraps an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        // Request/response round-trips are latency-bound (see the server's
        // matching setting).
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(BlockingClient {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Applies a read/write timeout to the underlying socket.
    pub fn set_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.writer.set_read_timeout(Some(timeout))?;
        self.writer.set_write_timeout(Some(timeout))
    }

    /// Sends a `GET` and reads the response.
    pub fn get(&mut self, target: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", target, &[])
    }

    /// Sends a `POST` with a body and reads the response.
    pub fn post(&mut self, target: &str, body: &[u8]) -> std::io::Result<HttpResponse> {
        self.request("POST", target, body)
    }

    /// One request / response round-trip on the kept-alive connection.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: kreach\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let status_line = read_one_line(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the stream",
            )
        })?;
        // "HTTP/1.1 200 OK"
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        let mut close = false;
        let mut retry_after = None;
        loop {
            let line = read_one_line(&mut self.reader)?.ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof inside headers")
            })?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad content-length {value:?}"),
                        )
                    })?;
                } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if name == "retry-after" {
                    // Only the delta-seconds form; a date form is ignored.
                    retry_after = value.parse::<u64>().ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(HttpResponse {
            status,
            body,
            close,
            retry_after,
        })
    }
}

fn read_one_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<String>> {
    match read_line_bounded(reader, MAX_LINE_BYTES, None) {
        Ok(line) => Ok(line),
        Err(RequestError::Io(e)) => Err(e),
        Err(RequestError::Timeout) => Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "read timed out",
        )),
        Err(other) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            other.to_string(),
        )),
    }
}
