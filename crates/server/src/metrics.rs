//! Aggregated connection- and request-level serving metrics.
//!
//! Counters are lock-free atomics bumped on the handler threads; the
//! end-to-end request latency histogram sits behind one mutex taken once per
//! request (µs-scale work next to socket I/O). `/stats` renders a
//! [`MetricsSnapshot`] alongside the engine's own
//! [`kreach_engine::EngineInfo`].

use kreach_engine::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Live counters shared by the acceptor and every connection handler.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Connections accepted from the listener.
    pub accepted: AtomicU64,
    /// Connections admitted past the in-flight budget.
    pub admitted: AtomicU64,
    /// Connections shed with a fast 503 because the budget was exhausted.
    pub shed: AtomicU64,
    /// HTTP requests parsed (across all endpoints).
    pub http_requests: AtomicU64,
    /// Line-protocol operations answered.
    pub line_ops: AtomicU64,
    /// Responses with a 2xx status.
    pub ok: AtomicU64,
    /// Responses with a 4xx status (malformed requests, bad parameters).
    pub client_errors: AtomicU64,
    /// Responses with a 5xx status (including admission-control 503s sent
    /// from handler context; acceptor-side sheds are only in `shed`).
    pub server_errors: AtomicU64,
    /// Reachability questions answered (single, batch, and line-mode).
    pub queries: AtomicU64,
    /// Edge mutations routed through the engine.
    pub mutations: AtomicU64,
    /// Request bytes read (request lines, headers, bodies).
    pub bytes_in: AtomicU64,
    /// Response bytes written.
    pub bytes_out: AtomicU64,
    latency: Mutex<LatencyHistogram>,
    started: Instant,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ServerMetrics {
            accepted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            line_ops: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::new()),
            started: Instant::now(),
        }
    }

    /// Counts a finished response by its status class.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.ok,
            400..=499 => &self.client_errors,
            _ => &self.server_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's end-to-end latency (first byte read to last
    /// byte written).
    pub fn record_latency(&self, elapsed: Duration) {
        self.latency
            .lock()
            .expect("latency histogram poisoned")
            .record(elapsed.as_nanos() as u64);
    }

    /// A point-in-time copy of the end-to-end request latency histogram —
    /// the raw log2 buckets behind the `/metrics` duration histogram, where
    /// the snapshot's quantiles are not enough.
    pub fn latency_histogram(&self) -> LatencyHistogram {
        self.latency
            .lock()
            .expect("latency histogram poisoned")
            .clone()
    }

    /// A consistent-enough point-in-time copy of every counter. `active`
    /// (connections currently in service) is owned by the caller's
    /// admission control, not by this struct, so it is passed in.
    pub fn snapshot(&self, active: u64) -> MetricsSnapshot {
        let latency = self
            .latency
            .lock()
            .expect("latency histogram poisoned")
            .clone();
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            active,
            http_requests: self.http_requests.load(Ordering::Relaxed),
            line_ops: self.line_ops.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            server_errors: self.server_errors.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            p50_micros: latency.p50_micros(),
            p99_micros: latency.p99_micros(),
            mean_micros: latency.mean_nanos() / 1e3,
            uptime_secs: self.started.elapsed().as_secs_f64(),
        }
    }
}

/// Snapshot of [`ServerMetrics`] counters, plus latency quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections admitted past the budget.
    pub admitted: u64,
    /// Connections shed with a fast 503.
    pub shed: u64,
    /// Connections currently in service.
    pub active: u64,
    /// HTTP requests parsed.
    pub http_requests: u64,
    /// Line-protocol operations answered.
    pub line_ops: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 4xx responses.
    pub client_errors: u64,
    /// 5xx responses from handler context.
    pub server_errors: u64,
    /// Reachability questions answered.
    pub queries: u64,
    /// Edge mutations routed through the engine.
    pub mutations: u64,
    /// Request bytes read.
    pub bytes_in: u64,
    /// Response bytes written.
    pub bytes_out: u64,
    /// Median request latency in microseconds.
    pub p50_micros: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_micros: f64,
    /// Mean request latency in microseconds.
    pub mean_micros: f64,
    /// Seconds since the metrics (and so the server) started.
    pub uptime_secs: f64,
}

impl MetricsSnapshot {
    /// The snapshot as one JSON object (hand-rolled; the build is hermetic).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"accepted\":{},\"admitted\":{},\"shed\":{},\"active\":{},",
                "\"http_requests\":{},\"line_ops\":{},",
                "\"ok\":{},\"client_errors\":{},\"server_errors\":{},",
                "\"queries\":{},\"mutations\":{},",
                "\"bytes_in\":{},\"bytes_out\":{},",
                "\"p50_micros\":{:.3},\"p99_micros\":{:.3},\"mean_micros\":{:.3},",
                "\"uptime_secs\":{:.3}}}"
            ),
            self.accepted,
            self.admitted,
            self.shed,
            self.active,
            self.http_requests,
            self.line_ops,
            self.ok,
            self.client_errors,
            self.server_errors,
            self.queries,
            self.mutations,
            self.bytes_in,
            self.bytes_out,
            self.p50_micros,
            self.p99_micros,
            self.mean_micros,
            self.uptime_secs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_land_in_their_class_counters() {
        let m = ServerMetrics::new();
        m.record_status(200);
        m.record_status(202);
        m.record_status(404);
        m.record_status(503);
        m.record_latency(Duration::from_micros(5));
        let snap = m.snapshot(0);
        assert_eq!(snap.ok, 2);
        assert_eq!(snap.client_errors, 1);
        assert_eq!(snap.server_errors, 1);
        assert!(snap.p50_micros > 0.0);
        assert!(snap.uptime_secs >= 0.0);
    }

    #[test]
    fn snapshot_renders_as_json() {
        let m = ServerMetrics::new();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.shed.fetch_add(1, Ordering::Relaxed);
        let json = m.snapshot(2).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for field in [
            "\"accepted\":3",
            "\"shed\":1",
            "\"p99_micros\"",
            "\"uptime_secs\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
