//! The listener: an acceptor thread, a bounded connection-handler pool,
//! admission control, and graceful drain.
//!
//! ## Life of a connection
//!
//! The acceptor thread owns the [`TcpListener`]. Each accepted connection is
//! checked against the **in-flight budget** ([`ServerConfig::max_inflight`]:
//! connections admitted and not yet finished, queued ones included). Over
//! budget, the acceptor writes a one-line `503 Service Unavailable` and
//! closes — shedding costs one syscall-bounded write and never touches the
//! engine, so overload degrades into fast refusals instead of unbounded
//! queueing. Within budget, the connection is queued to a fixed pool of
//! handler threads.
//!
//! A handler sniffs the first line: an `HTTP/1.x` request line selects the
//! HTTP protocol (keep-alive supported), anything else selects the **line
//! protocol** — each line is one operation in the same grammar as the
//! `kreach update` workload files (`s t [k]`, `+ u v`, `- u v`), answered
//! with one line in the shared response format of
//! [`kreach_datasets::render_answer_line`].
//!
//! ## Graceful drain
//!
//! [`ServerHandle::shutdown`] (or `POST /shutdown`) flips a flag and wakes
//! the acceptor, which stops admitting and drops the queue's sender.
//! Handlers finish every admitted connection — in-flight batches run to
//! completion because [`kreach_engine::BatchEngine::run`] is synchronous —
//! then exit; [`ServerHandle::join`] joins them all and reports the final
//! counters.

use crate::http::{self, Request, RequestError};
use crate::metrics::{MetricsSnapshot, ServerMetrics};
use kreach_datasets::{
    read_update_workload, read_workload, render_answer_line, render_answer_lines,
    render_update_ack, UpdateOp,
};
use kreach_engine::{BatchEngine, Query, QueryBatch, UpdateError};
use kreach_graph::dynamic::EdgeUpdate;
use kreach_graph::VertexId;
use kreach_obs::observe::{CLASS_LABELS, RESOLUTION_LABELS};
use kreach_obs::prom::{label, Exemplar, HistogramSeries, PromText};
use kreach_obs::window::WINDOW_SECS;
use kreach_obs::{
    DurabilityStats, FlightRecorder, Recorder, SlowQueryEntry, SlowQueryLog, WindowSnapshot,
    WindowStats,
};
use std::cell::RefCell;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TEXT: &str = "text/plain; charset=utf-8";
const JSON: &str = "application/json";
const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Slow-query entries retained (newest win); the monotone total keeps
/// counting past this.
const SLOW_LOG_CAPACITY: usize = 128;

thread_local! {
    /// Per-handler-thread answer buffer, loaned to the engine through
    /// [`BatchEngine::run_into`] and reused across requests: a warmed
    /// handler serves `/batch` and `/reach` without allocating answer
    /// storage.
    static HANDLER_ANSWERS: RefCell<Vec<bool>> = const { RefCell::new(Vec::new()) };
}

/// Runs a batch through the engine using this handler thread's reusable
/// answer buffer, handing the answers to `consume` while they are borrowed.
fn run_with_scratch<T>(
    engine: &BatchEngine,
    batch: &QueryBatch,
    consume: impl FnOnce(&[bool]) -> T,
) -> Result<T, kreach_engine::EngineError> {
    HANDLER_ANSWERS.with(|cell| {
        let mut answers = cell.borrow_mut();
        engine.run_into(batch, &mut answers)?;
        Ok(consume(&answers))
    })
}

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind; `0` picks an ephemeral port (read it back from
    /// [`ServerHandle::port`]).
    pub port: u16,
    /// Connection-handler threads (clamped to at least 1). This bounds how
    /// many connections make progress concurrently; the engine's own worker
    /// pool bounds query parallelism within a batch.
    pub handlers: usize,
    /// Admission budget: connections admitted (queued + in service) before
    /// the acceptor starts shedding with fast 503s. Clamped to at least 1.
    pub max_inflight: usize,
    /// Largest accepted request body, in bytes; bigger declared bodies are
    /// refused with `413` before any body byte is read.
    pub max_body_bytes: usize,
    /// Slow-client guard, applied twice over: as the socket read/write
    /// timeout bounding each individual read, and as a whole-request
    /// deadline bounding their sum — so neither a stalled client nor one
    /// trickling a byte at a time can pin a handler past roughly twice
    /// this duration per request.
    pub read_timeout: Duration,
    /// Slow-query threshold in microseconds: requests whose end-to-end
    /// latency reaches it land in the slow-query ring (dumped by
    /// `GET /stats?slow=1` and counted by `kreach_slow_queries_total`).
    /// `0` disables the log.
    pub slow_query_us: u64,
    /// Replay-debt ceiling for `/healthz`: when the WAL holds more than
    /// this many epochs past the last checkpoint, health flips to 503
    /// `"degraded"` (the checkpointer is falling behind; a crash now pays
    /// that much replay). `None` disables the check.
    pub max_wal_lag: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            handlers: 4,
            max_inflight: 64,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
            slow_query_us: 0,
            max_wal_lag: None,
        }
    }
}

/// The server's observability bundle: rolling windows, the flight
/// recorder, and (when serving a durable store) the durability counters.
///
/// [`start`] builds a default bundle; callers that own a store or want the
/// flight recorder dumped somewhere specific build one and pass it to
/// [`start_with_obs`]. All fields are shared handles, so a caller can keep
/// clones (for a stderr ticker, a drain-time dump, a panic hook) while the
/// server feeds them.
#[derive(Clone)]
pub struct ServerObs {
    /// Rolling 1s/10s/60s windowed telemetry, fed by every request and
    /// every engine batch.
    pub windows: Arc<WindowStats>,
    /// Bounded ring of structured events (sheds, epoch bumps, retunes,
    /// checkpoints, slow queries).
    pub events: Arc<FlightRecorder>,
    /// WAL/checkpoint instrumentation when a durable store backs the
    /// engine; `None` for in-memory serving.
    pub durability: Option<Arc<DurabilityStats>>,
    /// Where `POST /debug/flightrec` writes its `flightrec-<ts>.jsonl`
    /// dump; `None` serves the events in the response body only.
    pub flight_dump_dir: Option<PathBuf>,
}

impl Default for ServerObs {
    fn default() -> Self {
        ServerObs {
            windows: Arc::new(WindowStats::new()),
            events: Arc::new(FlightRecorder::default()),
            durability: None,
            flight_dump_dir: None,
        }
    }
}

struct Shared {
    engine: Arc<BatchEngine>,
    metrics: ServerMetrics,
    config: ServerConfig,
    addr: SocketAddr,
    inflight: AtomicUsize,
    shutting_down: AtomicBool,
    /// The engine's recorder, cloned so handlers can open `server.request`
    /// spans that the engine's own spans nest under. Disabled recorders
    /// make every span call a single branch.
    recorder: Recorder,
    slow_log: SlowQueryLog,
    obs: ServerObs,
}

impl Shared {
    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Flips the drain flag and wakes the acceptor with a loopback
    /// connection so a quiet listener notices immediately. Idempotent.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        // When bound to the unspecified address (0.0.0.0 / ::), connecting
        // to it is not portable — aim the wake-up at loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(if wake.is_ipv4() {
                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
            } else {
                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
    }

    /// Metrics snapshot with the admission gauge filled in (the in-flight
    /// count lives on `Shared`, not in `ServerMetrics`, because admission
    /// control is its consumer of record).
    fn snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.inflight.load(Ordering::Acquire) as u64)
    }
}

/// Final report returned by [`ServerHandle::join`] after a drain.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Metrics at the moment every thread had exited.
    pub metrics: MetricsSnapshot,
    /// Whether every server thread exited without panicking.
    pub clean: bool,
    /// Requests that crossed the slow-query threshold over the server's
    /// lifetime (0 when the log was disabled).
    pub slow_queries: u64,
}

/// A running server. Dropping the handle shuts the server down and joins
/// its threads; call [`ServerHandle::join`] to do that explicitly and get
/// the [`DrainReport`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when `port: 0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.shared.addr.port()
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<BatchEngine> {
        &self.shared.engine
    }

    /// Point-in-time copy of the serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// Requests that crossed the slow-query threshold so far (monotone).
    pub fn slow_queries(&self) -> u64 {
        self.shared.slow_log.total()
    }

    /// The retained slow-query entries as one JSON array — the same
    /// document `GET /stats?slow=1` serves.
    pub fn slow_log_json(&self) -> String {
        self.shared.slow_log.to_json()
    }

    /// Whether a drain has been requested (by [`ServerHandle::shutdown`] or
    /// `POST /shutdown`).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// Requests a graceful drain: stop admitting, finish every admitted
    /// connection, then let the threads exit. Returns immediately;
    /// [`ServerHandle::join`] waits for completion.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server has fully drained (every thread joined) and
    /// reports the final counters. Does **not** initiate the drain — callers
    /// that want to stop the server call [`ServerHandle::shutdown`] first;
    /// callers serving until an external `POST /shutdown` just call `join`.
    pub fn join(mut self) -> DrainReport {
        self.join_threads()
    }

    fn join_threads(&mut self) -> DrainReport {
        let mut clean = true;
        if let Some(acceptor) = self.acceptor.take() {
            clean &= acceptor.join().is_ok();
        }
        for handle in self.handlers.drain(..) {
            clean &= handle.join().is_ok();
        }
        DrainReport {
            metrics: self.shared.snapshot(),
            clean,
            slow_queries: self.shared.slow_log.total(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.handlers.is_empty() {
            self.shared.begin_shutdown();
            let _ = self.join_threads();
        }
    }
}

/// Binds the listener and spawns the acceptor and handler threads, serving
/// `engine` until a shutdown is requested. Uses a default observability
/// bundle (fresh windows and flight recorder, no durability stats); see
/// [`start_with_obs`] to share one with the caller.
pub fn start(engine: Arc<BatchEngine>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    start_with_obs(engine, config, ServerObs::default())
}

/// Like [`start`], with a caller-supplied observability bundle: the server
/// installs its windows and flight recorder on the engine (so batch tallies
/// and epoch events land in them) and exposes everything through
/// `/metrics`, `/stats`, `/healthz`, and `POST /debug/flightrec`.
pub fn start_with_obs(
    engine: Arc<BatchEngine>,
    config: ServerConfig,
    obs: ServerObs,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind((config.host.as_str(), config.port))?;
    let addr = listener.local_addr()?;
    let recorder = engine.recorder().clone();
    let slow_log = SlowQueryLog::new(config.slow_query_us, SLOW_LOG_CAPACITY);
    engine.set_windows(Arc::clone(&obs.windows));
    engine.set_events(Arc::clone(&obs.events));
    let shared = Arc::new(Shared {
        engine,
        metrics: ServerMetrics::new(),
        config: ServerConfig {
            handlers: config.handlers.max(1),
            max_inflight: config.max_inflight.max(1),
            ..config
        },
        addr,
        inflight: AtomicUsize::new(0),
        shutting_down: AtomicBool::new(false),
        recorder,
        slow_log,
        obs,
    });

    let (sender, receiver) = mpsc::channel::<TcpStream>();
    let receiver = Arc::new(Mutex::new(receiver));
    let handlers = (0..shared.config.handlers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let receiver = Arc::clone(&receiver);
            std::thread::Builder::new()
                .name(format!("kreach-conn-{i}"))
                .spawn(move || loop {
                    // Hold the lock only while dequeuing, exactly like the
                    // engine's worker pool.
                    let conn = match receiver.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break,
                    };
                    match conn {
                        Ok(stream) => {
                            handle_connection(&shared, stream);
                            shared.inflight.fetch_sub(1, Ordering::AcqRel);
                        }
                        Err(_) => break, // acceptor gone and queue drained
                    }
                })
                .expect("failed to spawn connection handler")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("kreach-acceptor".to_string())
            .spawn(move || {
                accept_loop(&shared, listener, sender);
            })
            .expect("failed to spawn acceptor")
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        handlers,
    })
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener, sender: mpsc::Sender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shared.is_shutting_down() {
                    break;
                }
                // Persistent accept errors (EMFILE under fd exhaustion being
                // the classic) must not turn the acceptor into a busy-spin:
                // back off briefly so handlers can finish and free fds.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.is_shutting_down() {
            // The shutdown wake-up itself, or a straggler racing it: either
            // way nothing new is admitted during a drain.
            drop(stream);
            break;
        }
        shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        // The acceptor is the only incrementer, so load-then-add cannot
        // over-admit; concurrent handler decrements only make room.
        if shared.inflight.load(Ordering::Acquire) >= shared.config.max_inflight {
            shed(shared, stream);
            continue;
        }
        shared.inflight.fetch_add(1, Ordering::AcqRel);
        shared.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        if sender.send(stream).is_err() {
            break;
        }
    }
    // Dropping the sender lets handlers drain the queue and exit.
}

/// Fast 503: one bounded write on the acceptor thread, never touching the
/// engine or the handler pool.
fn shed(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
    shared.obs.windows.record_shed();
    shared.obs.events.record(
        "shed",
        format!(
            "inflight={} budget={}",
            shared.inflight.load(Ordering::Relaxed),
            shared.config.max_inflight
        ),
    );
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = format!(
        "overloaded: {} connections in flight (budget {}); retry\n",
        shared.inflight.load(Ordering::Relaxed),
        shared.config.max_inflight
    );
    if let Ok(n) = http::write_response_with(
        &mut stream,
        503,
        TEXT,
        body.as_bytes(),
        true,
        extra_headers(503),
    ) {
        shared
            .metrics
            .bytes_out
            .fetch_add(n as u64, Ordering::Relaxed);
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    // Request/response round-trips are latency-bound: never wait for ACKs
    // to coalesce segments.
    let _ = stream.set_nodelay(true);
    // Loopback peers may request a drain; remote ones may not (see route).
    let peer_is_loopback = stream
        .peer_addr()
        .map(|peer| peer.ip().is_loopback())
        .unwrap_or(false);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        // One whole-request budget: the socket timeout bounds each read,
        // the deadline bounds their sum (trickling clients).
        let deadline = Instant::now() + shared.config.read_timeout;
        let line = match http::read_line_bounded(&mut reader, http::MAX_LINE_BYTES, Some(deadline))
        {
            Ok(None) => break, // client closed between requests
            Ok(Some(line)) => line,
            Err(RequestError::Timeout) => {
                // Slow or stalled client: time it out explicitly so the
                // handler slot is reclaimed.
                respond(shared, &mut writer, 408, TEXT, b"request timed out\n", true);
                break;
            }
            Err(RequestError::Bad(message)) => {
                respond(
                    shared,
                    &mut writer,
                    400,
                    TEXT,
                    format!("{message}\n").as_bytes(),
                    true,
                );
                break;
            }
            Err(_) => break,
        };
        if line.is_empty() {
            continue; // stray blank line between requests
        }
        // The clock starts once a request line has arrived: the idle gap a
        // keep-alive client leaves between requests is its think time, not
        // serving latency, and must not pollute the /stats histogram.
        let started = Instant::now();
        if http::is_http_request_line(&line) {
            // Headers + body get their own whole-request budget from here.
            if !serve_http_request(
                shared,
                &line,
                &mut reader,
                &mut writer,
                started,
                started + shared.config.read_timeout,
                peer_is_loopback,
            ) {
                break;
            }
        } else {
            serve_line_session(shared, line, &mut reader, &mut writer);
            break;
        }
        if shared.is_shutting_down() {
            break;
        }
    }
}

/// Extra headers for a status: every 503 — shed, degraded `/update`,
/// unhealthy `/healthz` — carries `Retry-After: 1` so well-behaved clients
/// back off instead of hammering a server that already said "not now".
fn extra_headers(status: u16) -> &'static [(&'static str, &'static str)] {
    if status == 503 {
        &[("Retry-After", "1")]
    } else {
        &[]
    }
}

/// Writes a response, charging byte and status counters. Used for protocol
/// errors discovered outside normal routing.
fn respond(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) {
    if let Ok(n) = http::write_response_with(
        writer,
        status,
        content_type,
        body,
        close,
        extra_headers(status),
    ) {
        shared
            .metrics
            .bytes_out
            .fetch_add(n as u64, Ordering::Relaxed);
    }
    shared.metrics.record_status(status);
}

/// Parses and answers one HTTP request; returns whether the connection may
/// serve another.
#[allow(clippy::too_many_arguments)]
fn serve_http_request(
    shared: &Arc<Shared>,
    request_line: &str,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    started: Instant,
    deadline: Instant,
    peer_is_loopback: bool,
) -> bool {
    let request = match Request::parse(
        request_line,
        reader,
        shared.config.max_body_bytes,
        Some(deadline),
    ) {
        Ok(request) => request,
        Err(RequestError::Timeout) => {
            respond(shared, writer, 408, TEXT, b"request timed out\n", true);
            return false;
        }
        Err(RequestError::Bad(message)) => {
            respond(
                shared,
                writer,
                400,
                TEXT,
                format!("{message}\n").as_bytes(),
                true,
            );
            return false;
        }
        Err(err @ RequestError::TooLarge { .. }) => {
            // The body was never read, so the connection is out of sync:
            // refuse and close.
            respond(
                shared,
                writer,
                413,
                TEXT,
                format!("{err}\n").as_bytes(),
                true,
            );
            return false;
        }
        Err(RequestError::Io(_)) => return false,
    };
    shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
    shared.metrics.bytes_in.fetch_add(
        (request_line.len() + request.head_bytes + request.body.len()) as u64,
        Ordering::Relaxed,
    );

    // The request span is the trace root: the engine's own spans
    // (engine.batch → engine.query → backend probes) nest under it because
    // `shared.recorder` is the engine's recorder.
    let mut span = shared.recorder.span("server.request");
    let trace_id = span.trace_id();
    let (status, content_type, body) = route(shared, &request, peer_is_loopback);
    span.note(format!(
        "{} {} status={status}",
        request.method, request.path
    ));
    drop(span);
    // A HEAD client will not read a response body, so any body bytes would
    // bleed into its next response: always close after answering one.
    let close = request.close || shared.is_shutting_down() || request.method == "HEAD";
    if let Ok(n) = http::write_response_with(
        writer,
        status,
        content_type,
        &body,
        close,
        extra_headers(status),
    ) {
        shared
            .metrics
            .bytes_out
            .fetch_add(n as u64, Ordering::Relaxed);
    } else {
        return false;
    }
    shared.metrics.record_status(status);
    let elapsed = started.elapsed();
    shared.metrics.record_latency(elapsed);
    shared.obs.windows.record_request(elapsed.as_nanos() as u64);
    let micros = elapsed.as_micros() as u64;
    if shared.slow_log.is_slow(micros) {
        let op = format!("{} {}", request.method, request.path);
        shared.obs.events.record(
            "slow_query",
            format!("trace_id={trace_id} op={op} status={status} micros={micros}"),
        );
        shared.slow_log.record(
            trace_id,
            op,
            status,
            micros,
            &shared.recorder.spans_for_trace(trace_id),
        );
    }
    !close
}

/// Dispatches one parsed request to its endpoint.
fn route(
    shared: &Arc<Shared>,
    request: &Request,
    peer_is_loopback: bool,
) -> (u16, &'static str, Vec<u8>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let (status, body) = healthz_doc(shared);
            (status, JSON, body.into_bytes())
        }
        ("GET", "/metrics") => (200, PROM, metrics_text(shared).into_bytes()),
        ("GET", "/stats") => {
            // `?slow=1` swaps the stats document for the slow-query ring —
            // non-destructive by default (dashboards poll it); add
            // `&drain=1` to consume the ring (the monotone total keeps
            // counting either way).
            if request.query.iter().any(|(k, v)| k == "slow" && v == "1") {
                let drain = request.query.iter().any(|(k, v)| k == "drain" && v == "1");
                let entries = if drain {
                    shared.slow_log.drain()
                } else {
                    shared.slow_log.entries()
                };
                let mut body = slow_entries_json(&entries);
                body.push('\n');
                (200, JSON, body.into_bytes())
            } else {
                (200, JSON, stats_json(shared).into_bytes())
            }
        }
        ("GET", "/reach") => endpoint_reach(shared, request),
        ("POST", "/batch") => endpoint_batch(shared, request),
        ("POST", "/update") => endpoint_update(shared, request),
        ("POST", "/shutdown") => {
            // The drain endpoint is an operator control, not a data-plane
            // one: when the listener is bound beyond loopback (--host
            // 0.0.0.0), a remote peer must not be able to kill the server
            // with one unauthenticated request.
            if !peer_is_loopback {
                return (
                    403,
                    TEXT,
                    b"shutdown is only accepted from loopback clients\n".to_vec(),
                );
            }
            shared.begin_shutdown();
            (202, TEXT, b"draining\n".to_vec())
        }
        ("POST", "/debug/flightrec") => {
            // Like /shutdown, a debug control: the event ring can carry
            // operational detail (slow ops, epochs) a remote peer has no
            // business reading, and a configured dump dir means disk writes.
            if !peer_is_loopback {
                return (
                    403,
                    TEXT,
                    b"flight-recorder dumps are only accepted from loopback clients\n".to_vec(),
                );
            }
            let body = shared.obs.events.to_jsonl();
            if let Some(dir) = &shared.obs.flight_dump_dir {
                if let Err(e) = shared.obs.events.dump_to(dir) {
                    return (
                        500,
                        TEXT,
                        format!("flight-recorder dump to {} failed: {e}\n", dir.display())
                            .into_bytes(),
                    );
                }
            }
            // JSON-lines, not one JSON document: plain text is the honest
            // content type.
            (200, TEXT, body.into_bytes())
        }
        ("GET" | "POST", path) => (
            404,
            TEXT,
            format!("no route for {} {path}\n", request.method).into_bytes(),
        ),
        (method, _) => (
            405,
            TEXT,
            format!("method {method:?} not allowed\n").into_bytes(),
        ),
    }
}

/// `GET /reach?s=..&t=..[&k=..]` — one query through the batch path.
fn endpoint_reach(shared: &Arc<Shared>, request: &Request) -> (u16, &'static str, Vec<u8>) {
    let mut s = None;
    let mut t = None;
    let mut k = None;
    for (key, value) in &request.query {
        let slot = match key.as_str() {
            "s" => &mut s,
            "t" => &mut t,
            "k" => &mut k,
            other => {
                return (
                    400,
                    TEXT,
                    format!("unknown query parameter {other:?} (use s, t, k)\n").into_bytes(),
                )
            }
        };
        match value.parse::<u32>() {
            Ok(parsed) => *slot = Some(parsed),
            Err(e) => {
                return (
                    400,
                    TEXT,
                    format!("invalid {key} value {value:?}: {e}\n").into_bytes(),
                )
            }
        }
    }
    let (Some(s), Some(t)) = (s, t) else {
        return (
            400,
            TEXT,
            b"missing required parameters: /reach?s=<u32>&t=<u32>[&k=<u32>]\n".to_vec(),
        );
    };
    let query = Query {
        s: VertexId(s),
        t: VertexId(t),
        k: k.unwrap_or_else(|| shared.engine.default_k()),
    };
    let batch = QueryBatch::new(vec![query]);
    match run_with_scratch(&shared.engine, &batch, |answers| {
        let mut line = render_answer_line(query.s, query.t, query.k, answers[0]);
        line.push('\n');
        line
    }) {
        Ok(line) => {
            shared.metrics.queries.fetch_add(1, Ordering::Relaxed);
            (200, TEXT, line.into_bytes())
        }
        Err(e) => (400, TEXT, format!("{e}\n").into_bytes()),
    }
}

/// `POST /batch` — a pipelined batch: the body is a query workload file
/// (`s t [k]` lines), answered in order via the batch path. The response
/// body is byte-identical to what `kreach batch` prints for the same
/// workload.
fn endpoint_batch(shared: &Arc<Shared>, request: &Request) -> (u16, &'static str, Vec<u8>) {
    let entries = match read_workload(request.body.as_slice()) {
        Ok(entries) => entries,
        Err(e) => return (400, TEXT, format!("{e}\n").into_bytes()),
    };
    let batch = QueryBatch::from_triples(&entries, shared.engine.default_k());
    match run_with_scratch(&shared.engine, &batch, |answers| {
        render_answer_lines(batch.answered(answers))
    }) {
        Ok(body) => {
            shared
                .metrics
                .queries
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            (200, TEXT, body.into_bytes())
        }
        Err(e) => (400, TEXT, format!("{e}\n").into_bytes()),
    }
}

/// `POST /update` — a mixed mutation/query stream in the `kreach update`
/// workload grammar. Mutations bump the engine epoch; queries are answered
/// against all mutations before them in the body. On an error mid-stream
/// the mutations already applied stay applied (the response says how far it
/// got).
fn endpoint_update(shared: &Arc<Shared>, request: &Request) -> (u16, &'static str, Vec<u8>) {
    let ops = match read_update_workload(request.body.as_slice()) {
        Ok(ops) => ops,
        Err(e) => return (400, TEXT, format!("{e}\n").into_bytes()),
    };
    let mut body = String::new();
    let mut pending: Vec<Query> = Vec::new();
    for op in &ops {
        match *op {
            UpdateOp::Query { s, t, k } => pending.push(Query {
                s,
                t,
                k: k.unwrap_or_else(|| shared.engine.default_k()),
            }),
            UpdateOp::Insert { u, v } | UpdateOp::Remove { u, v } => {
                if let Err(resp) = flush_queries(shared, &mut pending, &mut body) {
                    return resp;
                }
                let insert = matches!(op, UpdateOp::Insert { .. });
                let update = if insert {
                    EdgeUpdate::Insert(u, v)
                } else {
                    EdgeUpdate::Remove(u, v)
                };
                match shared.engine.apply_updates(&[update]) {
                    Ok(outcome) => {
                        shared.metrics.mutations.fetch_add(1, Ordering::Relaxed);
                        body.push_str(&render_update_ack(
                            insert,
                            u,
                            v,
                            outcome.stats.applied() > 0,
                            outcome.epoch,
                        ));
                        body.push('\n');
                    }
                    Err(e @ UpdateError::Unsupported { .. }) => {
                        return (409, TEXT, format!("{body}error: {e}\n").into_bytes())
                    }
                    Err(e @ UpdateError::Durability { .. }) => {
                        // The update was refused (or could not be made
                        // durable) because storage is failing; the engine is
                        // now read-only. 503 + Retry-After tells well-behaved
                        // writers to back off and retry — the degraded prober
                        // restores read-write serving once the disk recovers.
                        return (503, TEXT, format!("{body}error: {e}\n").into_bytes());
                    }
                    Err(e) => return (400, TEXT, format!("{body}error: {e}\n").into_bytes()),
                }
            }
        }
    }
    if let Err(resp) = flush_queries(shared, &mut pending, &mut body) {
        return resp;
    }
    (200, TEXT, body.into_bytes())
}

/// Runs the queued queries of an `/update` stream as one batch, appending
/// their answer lines.
#[allow(clippy::type_complexity)]
fn flush_queries(
    shared: &Arc<Shared>,
    pending: &mut Vec<Query>,
    body: &mut String,
) -> Result<(), (u16, &'static str, Vec<u8>)> {
    if pending.is_empty() {
        return Ok(());
    }
    let batch = QueryBatch::new(std::mem::take(pending));
    match run_with_scratch(&shared.engine, &batch, |answers| {
        render_answer_lines(batch.answered(answers))
    }) {
        Ok(lines) => {
            shared
                .metrics
                .queries
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            body.push_str(&lines);
            Ok(())
        }
        Err(e) => Err((400, TEXT, format!("{body}error: {e}\n").into_bytes())),
    }
}

/// Renders a slice of slow-query entries as one JSON array (shared by the
/// non-destructive and draining variants of `GET /stats?slow=1`).
fn slow_entries_json(entries: &[SlowQueryEntry]) -> String {
    let body = entries
        .iter()
        .map(SlowQueryEntry::to_json)
        .collect::<Vec<_>>()
        .join(",");
    format!("[{body}]")
}

/// The `"window"` block of `/stats`: one snapshot object per rolling
/// window width, keyed `"1s"`, `"10s"`, `"60s"`.
fn window_block_json(windows: &WindowStats) -> String {
    let blocks = WINDOW_SECS
        .iter()
        .map(|&w| format!("\"{w}s\":{}", windows.snapshot(w).to_json()))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{blocks}}}")
}

/// The `/stats` document: engine snapshot + cache counters + rolling
/// windows + server metrics, as one JSON object.
fn stats_json(shared: &Arc<Shared>) -> String {
    let info = shared.engine.info();
    let metrics = shared.snapshot();
    format!(
        concat!(
            "{{\"backend\":\"{}\",\"workers\":{},\"vertex_count\":{},\"default_k\":{},",
            "\"epoch\":{},",
            "\"cache\":{{\"enabled\":{},\"entries\":{},\"hits\":{},\"misses\":{},",
            "\"neg_expired\":{},\"prefetched\":{},\"hit_rate\":{:.4}}},",
            "\"accel\":{{\"bytes\":{},\"dense_rows\":{},\"retunes\":{},",
            "\"rows_promoted\":{},\"rows_demoted\":{}}},",
            "\"batched\":{{\"groups\":{},\"queries\":{}}},",
            "\"admission\":{{\"max_inflight\":{},\"handlers\":{},\"shutting_down\":{}}},",
            "\"window\":{},",
            "\"flight_events\":{},",
            "\"server\":{}}}"
        ),
        info.backend,
        info.workers,
        info.vertex_count,
        info.default_k,
        info.epoch,
        info.cache_enabled,
        info.cache_entries,
        info.cache.hits,
        info.cache.misses,
        info.cache.neg_expired,
        info.cache.prefetched,
        info.cache.hit_rate(),
        info.accel_bytes,
        info.accel_dense_rows,
        info.accel_retunes,
        info.accel_promoted,
        info.accel_demoted,
        info.batched_groups,
        info.batched_queries,
        shared.config.max_inflight,
        shared.config.handlers,
        shared.is_shutting_down(),
        window_block_json(&shared.obs.windows),
        shared.obs.events.total(),
        metrics.to_json(),
    )
}

/// The `/healthz` document: liveness plus just enough identity to tell
/// *which* engine is healthy — backend name, mutation epoch, uptime, and
/// (when a durable store backs the engine) how stale the durable state is:
/// checkpoint age, the epoch it captured, the live WAL segment count, and
/// how many epochs sit in the WAL past that checkpoint.
///
/// The status code tracks the body: `200` with `"status":"ok"` while the
/// engine is read-write and replay debt is within bounds, `503` with
/// `"status":"degraded"` plus a `"cause"` field when the engine has fenced
/// itself read-only after a storage fault, or when `wal_lag` exceeds
/// [`ServerConfig::max_wal_lag`]. The schema stays back-compatible: every
/// pre-existing field keeps its name and type; degraded responses only
/// *add* fields.
fn healthz_doc(shared: &Arc<Shared>) -> (u16, String) {
    let info = shared.engine.info();
    let mut wal_lag = None;
    let durability = match &shared.obs.durability {
        Some(d) => {
            let age = match d.checkpoint_age_secs() {
                Some(age) => format!("{age:.3}"),
                None => "null".to_string(),
            };
            let lag = d.wal_lag(info.epoch);
            wal_lag = Some(lag);
            format!(
                ",\"checkpoint_age_secs\":{age},\"last_checkpoint_epoch\":{},\
                 \"wal_segments\":{},\"wal_lag\":{lag}",
                d.last_checkpoint_epoch.load(Ordering::Relaxed),
                d.wal_segments.load(Ordering::Relaxed),
            )
        }
        None => String::new(),
    };
    let degraded = shared.engine.degraded();
    let lag_breach = match (shared.config.max_wal_lag, wal_lag) {
        (Some(max), Some(lag)) => lag > max,
        _ => false,
    };
    let (status, state, extra) = if let Some(d) = degraded {
        (
            503,
            "degraded",
            format!(
                ",\"cause\":{},\"degraded_since_epoch\":{},\"degraded_probes\":{}",
                json_string(&d.cause),
                d.since_epoch,
                d.probes
            ),
        )
    } else if lag_breach {
        (
            503,
            "degraded",
            format!(
                ",\"cause\":{}",
                json_string(&format!(
                    "wal_lag {} exceeds --max-wal-lag {}",
                    wal_lag.unwrap_or(0),
                    shared.config.max_wal_lag.unwrap_or(0)
                ))
            ),
        )
    } else {
        (200, "ok", String::new())
    };
    let body = format!(
        "{{\"status\":\"{state}\",\"backend\":\"{}\",\"epoch\":{},\"uptime_secs\":{:.3}{durability}{extra}}}\n",
        info.backend,
        info.epoch,
        shared.snapshot().uptime_secs,
    );
    (status, body)
}

/// Renders `s` as a JSON string literal (escaping quotes, backslashes and
/// control bytes — fault causes carry arbitrary io error text).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `/metrics` document: every serving counter in Prometheus text
/// exposition format (`kreach_` prefix). Counters and histograms are
/// cumulative since server start, so consecutive scrapes are monotone; the
/// engine's per-case series sum to the number of queries it served (the
/// live Table-8 breakdown).
fn metrics_text(shared: &Arc<Shared>) -> String {
    let info = shared.engine.info();
    let tally = shared.engine.case_tally();
    let metrics = shared.snapshot();
    let latency = shared.metrics.latency_histogram();
    let mut text = PromText::new();

    // Connection and request plumbing.
    text.counter(
        "kreach_connections_accepted_total",
        "Connections accepted from the listener.",
        metrics.accepted,
    );
    text.counter(
        "kreach_connections_admitted_total",
        "Connections admitted past the in-flight budget.",
        metrics.admitted,
    );
    text.counter(
        "kreach_connections_shed_total",
        "Connections shed with a fast 503 (admission control).",
        metrics.shed,
    );
    text.gauge(
        "kreach_inflight_connections",
        "Connections admitted and not yet finished.",
        metrics.active as f64,
    );
    text.counter(
        "kreach_http_requests_total",
        "HTTP requests parsed.",
        metrics.http_requests,
    );
    text.counter(
        "kreach_line_ops_total",
        "Line-protocol operations answered.",
        metrics.line_ops,
    );
    text.counter_vec(
        "kreach_responses_total",
        "Responses by status class.",
        &[
            (label("class", "2xx"), metrics.ok),
            (label("class", "4xx"), metrics.client_errors),
            (label("class", "5xx"), metrics.server_errors),
        ],
    );
    text.counter(
        "kreach_queries_total",
        "Reachability questions answered (HTTP and line protocol).",
        metrics.queries,
    );
    text.counter(
        "kreach_mutations_total",
        "Edge mutations routed through the engine.",
        metrics.mutations,
    );
    text.counter(
        "kreach_bytes_in_total",
        "Request bytes read.",
        metrics.bytes_in,
    );
    text.counter(
        "kreach_bytes_out_total",
        "Response bytes written.",
        metrics.bytes_out,
    );
    // The newest slow-query entry rides the latency histogram as an
    // OpenMetrics exemplar: a scrape that sees a suspicious bucket gets a
    // concrete trace ID to chase instead of an anonymous count.
    let exemplar = shared.slow_log.latest().map(|entry| Exemplar {
        bucket: kreach_obs::window::bucket_index(entry.micros.saturating_mul(1_000)),
        labels: label("trace_id", &entry.trace_id.to_string()),
        value_secs: entry.micros as f64 / 1e6,
    });
    text.histogram_vec(
        "kreach_request_duration_seconds",
        "End-to-end HTTP request latency.",
        &[HistogramSeries {
            labels: String::new(),
            bucket_counts: latency.bucket_counts(),
            sum_nanos: latency.sum_nanos(),
            exemplar,
        }],
    );

    // Engine: the live Table-8 case breakdown and how queries resolved.
    let case_series: Vec<(String, u64)> = CLASS_LABELS
        .iter()
        .zip(tally.counts().iter())
        .map(|(name, &count)| (label("case", name), count))
        .collect();
    text.counter_vec(
        "kreach_engine_queries_by_case_total",
        "Engine-served queries by Algorithm 2 case (paper Table 8).",
        &case_series,
    );
    let resolution_series: Vec<(String, u64)> = RESOLUTION_LABELS
        .iter()
        .zip(tally.resolutions().iter())
        .map(|(name, &count)| (label("resolution", name), count))
        .collect();
    text.counter_vec(
        "kreach_engine_queries_by_resolution_total",
        "Engine-served queries by resolution path.",
        &resolution_series,
    );
    let case_hists: Vec<HistogramSeries<'_>> = CLASS_LABELS
        .iter()
        .zip(tally.histograms().iter())
        .map(|(name, hist)| HistogramSeries {
            labels: label("case", name),
            bucket_counts: hist.bucket_counts(),
            sum_nanos: hist.sum_nanos(),
            exemplar: None,
        })
        .collect();
    text.histogram_vec(
        "kreach_engine_query_duration_seconds",
        "Engine query latency by Algorithm 2 case.",
        &case_hists,
    );
    // From the same tally snapshot as the per-case series, so the sum
    // invariant holds within one scrape even while batches are landing.
    text.counter(
        "kreach_engine_queries_total",
        "Queries served by the engine (sum of the per-case series).",
        tally.total(),
    );
    text.counter(
        "kreach_engine_dense_probes_total",
        "Distance-bucketed cover bitset probes.",
        tally.dense_probes(),
    );
    text.counter(
        "kreach_engine_sparse_gallops_total",
        "Sparse gallop intersections.",
        tally.sparse_gallops(),
    );
    text.counter(
        "kreach_engine_batched_queries_total",
        "Cache misses answered through the target-grouped batched kernel.",
        tally.batched_queries(),
    );
    text.counter(
        "kreach_engine_batched_groups_total",
        "Target groups dispatched through the batched kernel.",
        tally.batched_groups(),
    );

    // Adaptive acceleration: footprint and retune activity.
    text.gauge(
        "kreach_engine_accel_bytes",
        "Bytes held by the backend's query acceleration (dense rows + position adjacency).",
        info.accel_bytes as f64,
    );
    text.counter(
        "kreach_engine_accel_retunes_total",
        "Adaptive dense-row retune passes run by the engine.",
        info.accel_retunes,
    );
    text.counter(
        "kreach_engine_accel_rows_promoted_total",
        "Cover rows promoted to the dense bitset form by retunes.",
        info.accel_promoted,
    );
    text.counter(
        "kreach_engine_accel_rows_demoted_total",
        "Cover rows demoted to the sparse form by retunes.",
        info.accel_demoted,
    );
    text.gauge(
        "kreach_engine_accel_dense_rows",
        "Dense rows after the most recent retune pass.",
        info.accel_dense_rows as f64,
    );

    // Result cache and mutation epoch.
    text.counter(
        "kreach_cache_hits_total",
        "Result-cache hits.",
        info.cache.hits,
    );
    text.counter(
        "kreach_cache_misses_total",
        "Result-cache misses.",
        info.cache.misses,
    );
    text.counter(
        "kreach_cache_prefetched_total",
        "Results inserted by hot-pair prefetch.",
        info.cache.prefetched,
    );
    text.counter(
        "kreach_cache_neg_expired_total",
        "Negative entries expired by TTL.",
        info.cache.neg_expired,
    );
    text.gauge(
        "kreach_cache_entries",
        "Entries resident in the result cache.",
        info.cache_entries as f64,
    );
    text.gauge(
        "kreach_engine_epoch",
        "Mutation epoch (bumped by every applied update batch).",
        info.epoch as f64,
    );

    // Update path: mutation outcomes, index maintenance work, stage timing.
    let updates = info.update_stats;
    text.counter_vec(
        "kreach_updates_total",
        "Edge mutations by outcome.",
        &[
            (label("kind", "insert"), updates.inserts),
            (label("kind", "remove"), updates.removes),
            (label("kind", "noop"), updates.noops),
        ],
    );
    text.counter(
        "kreach_update_rows_patched_total",
        "Index rows patched in place by updates.",
        updates.rows_patched,
    );
    text.counter(
        "kreach_update_rows_coalesced_total",
        "Pending row patches coalesced before application.",
        updates.rows_coalesced,
    );
    text.counter(
        "kreach_update_cover_additions_total",
        "Vertices added to the cover by repairs.",
        updates.cover_additions,
    );
    text.counter_vec(
        "kreach_update_repairs_total",
        "Cover repairs by the endpoint chosen to join the cover.",
        &[
            (label("arm", "source"), updates.repairs_picked_source),
            (label("arm", "target"), updates.repairs_picked_target),
        ],
    );
    text.counter(
        "kreach_update_full_rebuilds_total",
        "Full index rebuilds triggered by updates.",
        updates.full_rebuilds,
    );
    text.counter_vec(
        "kreach_update_stage_nanoseconds_total",
        "Time spent in the update path by stage, in nanoseconds.",
        &[
            (label("stage", "patch"), updates.patch_nanos),
            (label("stage", "repair"), updates.repair_nanos),
            (label("stage", "rebuild"), updates.rebuild_nanos),
        ],
    );

    // Rolling windows: one gauge family per signal, one series per window
    // width. Gauges on purpose (and named to avoid the cumulative
    // `_total`/`_bucket`/`_sum`/`_count` suffixes): windowed values move in
    // both directions between scrapes.
    let snaps: Vec<WindowSnapshot> = WINDOW_SECS
        .iter()
        .map(|&w| shared.obs.windows.snapshot(w))
        .collect();
    let wlabel = |s: &WindowSnapshot| label("w", &format!("{}s", s.window_secs));
    let window_series = |f: &dyn Fn(&WindowSnapshot) -> f64| -> Vec<(String, f64)> {
        snaps.iter().map(|s| (wlabel(s), f(s))).collect()
    };
    type WindowGauge<'a> = (&'a str, &'a str, &'a dyn Fn(&WindowSnapshot) -> f64);
    let families: [WindowGauge; 6] = [
        (
            "kreach_rps_window",
            "Requests per second over the rolling window.",
            &WindowSnapshot::rps,
        ),
        (
            "kreach_qps_window",
            "Engine queries per second over the rolling window.",
            &WindowSnapshot::qps,
        ),
        (
            "kreach_request_p50_seconds_window",
            "Median request latency over the rolling window, in seconds.",
            &|s| s.p50_micros / 1e6,
        ),
        (
            "kreach_request_p99_seconds_window",
            "99th-percentile request latency over the rolling window, in seconds.",
            &|s| s.p99_micros / 1e6,
        ),
        (
            "kreach_cache_hit_rate_window",
            "Result-cache hit rate over the rolling window.",
            &WindowSnapshot::cache_hit_rate,
        ),
        (
            "kreach_shed_rate_window",
            "Shed fraction of offered connections over the rolling window.",
            &WindowSnapshot::shed_rate,
        ),
    ];
    for (name, help, f) in families {
        text.gauge_vec(name, help, &window_series(f));
    }
    let case_mix: Vec<(String, f64)> = snaps
        .iter()
        .flat_map(|s| {
            CLASS_LABELS.iter().enumerate().map(|(i, name)| {
                (
                    format!("{},{}", wlabel(s), label("case", name)),
                    s.case_share(i),
                )
            })
        })
        .collect();
    text.gauge_vec(
        "kreach_case_share_window",
        "Fraction of windowed queries per Algorithm 2 case.",
        &case_mix,
    );

    // Durability: WAL and checkpoint instrumentation, present only when a
    // durable store backs the engine (cumulative, so they join the monotone
    // families).
    if let Some(d) = &shared.obs.durability {
        text.counter(
            "kreach_wal_appends_total",
            "Mutation batches appended to the write-ahead log.",
            d.wal_appends.load(Ordering::Relaxed),
        );
        text.counter(
            "kreach_wal_records_total",
            "Edge updates appended to the write-ahead log.",
            d.wal_records.load(Ordering::Relaxed),
        );
        text.counter(
            "kreach_wal_bytes_total",
            "Bytes appended to the write-ahead log.",
            d.wal_bytes.load(Ordering::Relaxed),
        );
        let wal_write = d.wal_write.bucket_counts();
        let wal_fsync = d.wal_fsync.bucket_counts();
        let ckpt = d.checkpoint_duration.bucket_counts();
        text.histogram_vec(
            "kreach_wal_append_write_seconds",
            "Serialize-and-write stage of one WAL append.",
            &[HistogramSeries {
                labels: String::new(),
                bucket_counts: &wal_write,
                sum_nanos: d.wal_write.sum_nanos(),
                exemplar: None,
            }],
        );
        text.histogram_vec(
            "kreach_wal_fsync_seconds",
            "Fsync stage of one WAL append (the fsync-before-ack cost).",
            &[HistogramSeries {
                labels: String::new(),
                bucket_counts: &wal_fsync,
                sum_nanos: d.wal_fsync.sum_nanos(),
                exemplar: None,
            }],
        );
        text.histogram_vec(
            "kreach_checkpoint_duration_seconds",
            "End-to-end checkpoint duration (snapshot, write, fsync, prune).",
            &[HistogramSeries {
                labels: String::new(),
                bucket_counts: &ckpt,
                sum_nanos: d.checkpoint_duration.sum_nanos(),
                exemplar: None,
            }],
        );
        text.counter(
            "kreach_checkpoints_total",
            "Checkpoints written since startup.",
            d.checkpoints.load(Ordering::Relaxed),
        );
        text.counter(
            "kreach_replayed_batches_total",
            "WAL batches replayed by the last restore.",
            d.replayed_batches.load(Ordering::Relaxed),
        );
        text.counter(
            "kreach_replayed_ops_total",
            "Edge updates replayed by the last restore.",
            d.replayed_ops.load(Ordering::Relaxed),
        );
        text.gauge(
            "kreach_wal_segments",
            "Live write-ahead-log segment files.",
            d.wal_segments.load(Ordering::Relaxed) as f64,
        );
        text.gauge(
            "kreach_checkpoint_age_seconds",
            "Seconds since the last completed checkpoint (-1 before the first).",
            d.checkpoint_age_secs().unwrap_or(-1.0),
        );
        text.gauge(
            "kreach_last_checkpoint_epoch",
            "Mutation epoch captured by the last checkpoint.",
            d.last_checkpoint_epoch.load(Ordering::Relaxed) as f64,
        );
        text.gauge(
            "kreach_last_checkpoint_bytes",
            "Size of the last checkpoint file, in bytes.",
            d.last_checkpoint_bytes.load(Ordering::Relaxed) as f64,
        );
        text.gauge(
            "kreach_wal_epoch_lag",
            "Epochs in the write-ahead log past the last checkpoint.",
            d.wal_lag(info.epoch) as f64,
        );
        text.counter(
            "kreach_checkpoint_failures_total",
            "Checkpoint attempts that failed (retried with backoff).",
            d.checkpoint_failures.load(Ordering::Relaxed),
        );
        text.counter(
            "kreach_faults_injected_total",
            "Storage faults injected by the fault-injection io (0 in production).",
            d.faults_injected.load(Ordering::Relaxed),
        );
    }

    // Degraded-mode fence: 1 while the engine is read-only after a
    // durability failure, 0 while serving read-write.
    text.gauge(
        "kreach_degraded",
        "Whether the engine is in read-only degraded mode (1) or read-write (0).",
        if shared.engine.is_degraded() {
            1.0
        } else {
            0.0
        },
    );

    // Flight recorder, slow-query log, and liveness.
    text.counter(
        "kreach_flight_events_total",
        "Structured events recorded by the flight recorder.",
        shared.obs.events.total(),
    );
    text.counter(
        "kreach_slow_queries_total",
        "Requests at or over the slow-query threshold.",
        shared.slow_log.total(),
    );
    text.gauge(
        "kreach_uptime_seconds",
        "Seconds since the server started.",
        metrics.uptime_secs,
    );
    text.finish()
}

/// The line protocol: one operation per line in the mixed-workload grammar,
/// one response line per operation, streamed as they arrive. `stats` prints
/// the `/stats` JSON, `quit` closes the session.
fn serve_line_session(
    shared: &Arc<Shared>,
    first_line: String,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) {
    let mut next = Some(first_line);
    loop {
        let line = match next.take() {
            Some(line) => line,
            None => match http::read_line_bounded(
                reader,
                http::MAX_LINE_BYTES,
                Some(Instant::now() + shared.config.read_timeout),
            ) {
                Ok(Some(line)) => line,
                Ok(None) => break,
                Err(RequestError::Timeout) => {
                    let _ = writeln!(writer, "error: read timed out");
                    break;
                }
                Err(_) => break,
            },
        };
        shared
            .metrics
            .bytes_in
            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        let trimmed = line.split('#').next().unwrap_or("").trim();
        if trimmed.is_empty() {
            continue; // comments and blank lines, like the file format
        }
        if trimmed == "quit" {
            break;
        }
        let op_started = Instant::now();
        let mut span = shared.recorder.span("server.line_op");
        let trace_id = span.trace_id();
        let reply = if trimmed == "stats" {
            stats_json(shared)
        } else {
            line_op_reply(shared, trimmed)
        };
        span.note(trimmed.to_string());
        drop(span);
        let elapsed = op_started.elapsed();
        shared.obs.windows.record_request(elapsed.as_nanos() as u64);
        let micros = elapsed.as_micros() as u64;
        if shared.slow_log.is_slow(micros) {
            shared.obs.events.record(
                "slow_query",
                format!("trace_id={trace_id} op=line:{trimmed} status=200 micros={micros}"),
            );
            shared.slow_log.record(
                trace_id,
                format!("line: {trimmed}"),
                200,
                micros,
                &shared.recorder.spans_for_trace(trace_id),
            );
        }
        shared.metrics.line_ops.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .bytes_out
            .fetch_add(reply.len() as u64 + 1, Ordering::Relaxed);
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shared.is_shutting_down() {
            break;
        }
    }
}

/// Answers one line-protocol operation, never panicking on bad input.
fn line_op_reply(shared: &Arc<Shared>, trimmed: &str) -> String {
    let ops = match read_update_workload(trimmed.as_bytes()) {
        Ok(ops) => ops,
        Err(e) => return format!("error: {e}"),
    };
    let Some(op) = ops.first() else {
        return "error: empty operation".to_string();
    };
    match *op {
        UpdateOp::Query { s, t, k } => {
            let query = Query {
                s,
                t,
                k: k.unwrap_or_else(|| shared.engine.default_k()),
            };
            let batch = QueryBatch::new(vec![query]);
            match run_with_scratch(&shared.engine, &batch, |answers| {
                render_answer_line(query.s, query.t, query.k, answers[0])
            }) {
                Ok(line) => {
                    shared.metrics.queries.fetch_add(1, Ordering::Relaxed);
                    line
                }
                Err(e) => format!("error: {e}"),
            }
        }
        UpdateOp::Insert { u, v } | UpdateOp::Remove { u, v } => {
            let insert = matches!(op, UpdateOp::Insert { .. });
            let update = if insert {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Remove(u, v)
            };
            match shared.engine.apply_updates(&[update]) {
                Ok(outcome) => {
                    shared.metrics.mutations.fetch_add(1, Ordering::Relaxed);
                    render_update_ack(insert, u, v, outcome.stats.applied() > 0, outcome.epoch)
                }
                Err(e) => format!("error: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::BlockingClient;
    use kreach_core::dynamic::DynamicOptions;
    use kreach_engine::{BfsBackend, DynamicKReachBackend, EngineConfig};
    use kreach_graph::DiGraph;
    use std::io::{BufRead, Read};

    fn tiny_config() -> ServerConfig {
        ServerConfig {
            handlers: 2,
            max_inflight: 8,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        }
    }

    fn bfs_server() -> ServerHandle {
        // 0→1→2, isolated 3.
        let g = Arc::new(DiGraph::from_edges(4, [(0, 1), (1, 2)]));
        let engine = Arc::new(BatchEngine::new(
            Arc::new(BfsBackend::new(g, 2)),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        ));
        start(engine, tiny_config()).expect("bind")
    }

    fn dynamic_server() -> ServerHandle {
        let g = DiGraph::from_edges(3, [(0, 1)]);
        let engine = Arc::new(BatchEngine::new(
            Arc::new(DynamicKReachBackend::new(g, 2, DynamicOptions::default())),
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        ));
        start(engine, tiny_config()).expect("bind")
    }

    #[test]
    fn healthz_stats_and_routing() {
        let server = bfs_server();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        let health = client.get("/healthz").unwrap();
        assert!(health.is_ok());
        let health_json = health.body_text();
        for field in [
            "\"status\":\"ok\"",
            "\"backend\":\"online-bfs\"",
            "\"epoch\":0",
            "\"uptime_secs\":",
        ] {
            assert!(
                health_json.contains(field),
                "missing {field} in {health_json}"
            );
        }
        let stats = client.get("/stats").unwrap();
        assert!(stats.is_ok());
        let json = stats.body_text();
        for field in [
            "\"backend\":\"online-bfs\"",
            "\"vertex_count\":4",
            "\"cache\":{",
            "\"accel\":{\"bytes\":",
            "\"batched\":{\"groups\":",
            "\"admission\":{\"max_inflight\":8",
            "\"server\":{\"accepted\":",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.request("PATCH", "/reach", &[]).unwrap().status, 405);
        // HEAD is unsupported (a body-less client would desync on our
        // bodies), and the connection closes after answering it.
        let mut head_client = BlockingClient::connect(server.addr()).unwrap();
        let response = head_client.request("HEAD", "/healthz", &[]).unwrap();
        assert_eq!(response.status, 405);
        assert!(response.close);
        // Everything except the HEAD probe rode one keep-alive connection.
        assert_eq!(server.metrics().admitted, 2);
        assert_eq!(server.metrics().http_requests, 5);
    }

    #[test]
    fn reach_endpoint_answers_and_validates() {
        let server = bfs_server();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        assert_eq!(
            client.get("/reach?s=0&t=2").unwrap().body_text(),
            "0 2 2 reachable\n"
        );
        assert_eq!(
            client.get("/reach?s=0&t=3&k=2").unwrap().body_text(),
            "0 3 2 unreachable\n"
        );
        assert_eq!(
            client.get("/reach?s=0&t=2&k=1").unwrap().body_text(),
            "0 2 1 unreachable\n"
        );
        for bad in [
            "/reach?s=0",          // missing t
            "/reach?s=a&t=1",      // non-numeric
            "/reach?s=0&t=99",     // out of range
            "/reach?s=0&t=1&qq=3", // unknown parameter
        ] {
            let response = client.get(bad).unwrap();
            assert_eq!(response.status, 400, "{bad}: {}", response.body_text());
        }
    }

    #[test]
    fn batch_endpoint_answers_in_order_and_rejects_bad_bodies() {
        let server = bfs_server();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        let response = client
            .post("/batch", b"0 2\n0 3 2\n0 2 1\n# comment\n2 0\n")
            .unwrap();
        assert!(response.is_ok());
        assert_eq!(
            response.body_text(),
            "0 2 2 reachable\n0 3 2 unreachable\n0 2 1 unreachable\n2 0 2 unreachable\n"
        );
        let response = client.post("/batch", b"0 zebra\n").unwrap();
        assert_eq!(response.status, 400);
        assert!(
            response.body_text().contains("line 1"),
            "{}",
            response.body_text()
        );
        let response = client.post("/batch", b"0 99\n").unwrap();
        assert_eq!(response.status, 400);
        assert!(
            response.body_text().contains("99"),
            "{}",
            response.body_text()
        );
    }

    #[test]
    fn update_endpoint_mutates_on_dynamic_and_conflicts_on_frozen() {
        let dynamic = dynamic_server();
        let mut client = BlockingClient::connect(dynamic.addr()).unwrap();
        let response = client
            .post("/update", b"0 2 2\n+ 1 2\n0 2 2\n- 1 2\n0 2 2\n")
            .unwrap();
        assert!(response.is_ok(), "{}", response.body_text());
        assert_eq!(
            response.body_text(),
            "0 2 2 unreachable\n+ 1 2 applied epoch=1\n0 2 2 reachable\n\
             - 1 2 applied epoch=2\n0 2 2 unreachable\n"
        );
        assert_eq!(dynamic.metrics().mutations, 2);
        assert_eq!(dynamic.engine().epoch(), 2);

        let frozen = bfs_server();
        let mut client = BlockingClient::connect(frozen.addr()).unwrap();
        let response = client.post("/update", b"+ 0 3\n").unwrap();
        assert_eq!(response.status, 409);
        assert!(
            response.body_text().contains("immutable"),
            "{}",
            response.body_text()
        );
    }

    #[test]
    fn line_protocol_streams_answers_and_mutations() {
        let server = dynamic_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut say = |text: &str, reader: &mut std::io::BufReader<TcpStream>| {
            writer.write_all(text.as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };
        assert_eq!(say("0 2 2\n", &mut reader), "0 2 2 unreachable");
        assert_eq!(say("+ 1 2\n", &mut reader), "+ 1 2 applied epoch=1");
        assert_eq!(say("0 2 2\n", &mut reader), "0 2 2 reachable");
        assert_eq!(say("q 0 2 1\n", &mut reader), "0 2 1 unreachable");
        assert!(say("wat is this\n", &mut reader).starts_with("error:"));
        assert!(say("stats\n", &mut reader).contains("\"backend\":\"dynamic-k-reach\""));
        // Comments draw no response; quit closes the session.
        writer.write_all(b"# just a comment\nquit\n").unwrap();
        writer.flush().unwrap();
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "{rest:?}");
        assert!(server.metrics().line_ops >= 6);
    }

    #[test]
    fn graceful_shutdown_drains_and_stops_accepting() {
        let server = bfs_server();
        let addr = server.addr();
        let mut client = BlockingClient::connect(addr).unwrap();
        let response = client.post("/shutdown", &[]).unwrap();
        assert_eq!(response.status, 202);
        assert!(response.close, "a draining server closes the connection");
        assert!(server.is_shutting_down());
        let report = server.join();
        assert!(report.clean);
        assert!(report.metrics.ok >= 1);
        // The listener is gone: new connections are refused.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    }

    #[test]
    fn admission_budget_sheds_with_fast_503() {
        let g = Arc::new(DiGraph::from_edges(2, [(0, 1)]));
        let engine = Arc::new(BatchEngine::new(
            Arc::new(BfsBackend::new(g, 1)),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        ));
        let server = start(
            engine,
            ServerConfig {
                handlers: 1,
                max_inflight: 1,
                read_timeout: Duration::from_secs(2),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // A holder occupies the whole budget with a half-sent request.
        let mut holder = TcpStream::connect(server.addr()).unwrap();
        holder.write_all(b"GET /re").unwrap();
        holder.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().admitted < 1 {
            assert!(Instant::now() < deadline, "holder never admitted");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The next connection is shed without waiting on the holder.
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        let response = client.get("/healthz").unwrap();
        assert_eq!(response.status, 503);
        assert!(response.close);
        assert!(response.body_text().contains("overloaded"));
        assert_eq!(server.metrics().shed, 1);
        // Releasing the holder frees the budget; service resumes.
        drop(holder);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut retry = BlockingClient::connect(server.addr()).unwrap();
            if retry.get("/healthz").unwrap().status == 200 {
                break;
            }
            assert!(Instant::now() < deadline, "budget never freed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn oversized_and_truncated_bodies_are_refused_cleanly() {
        let g = Arc::new(DiGraph::from_edges(2, [(0, 1)]));
        let engine = Arc::new(BatchEngine::with_defaults(Arc::new(BfsBackend::new(g, 1))));
        let server = start(
            engine,
            ServerConfig {
                max_body_bytes: 64,
                read_timeout: Duration::from_millis(300),
                ..tiny_config()
            },
        )
        .unwrap();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        let response = client.post("/batch", &vec![b'0'; 1024]).unwrap();
        assert_eq!(response.status, 413);
        assert!(response.close, "an unread body desynchronizes the stream");

        // Truncated body: declared 60 bytes (within the cap), then silence →
        // the read times out and the request is refused with 408.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /batch HTTP/1.1\r\nContent-Length: 60\r\n\r\n0 1")
            .unwrap();
        stream.flush().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut text = String::new();
        let _ = stream.read_to_string(&mut text);
        assert!(text.contains("408"), "{text:?}");

        // And the server still serves.
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        assert!(client.get("/healthz").unwrap().is_ok());
    }

    #[test]
    fn trickling_client_is_cut_off_by_the_request_deadline() {
        let g = Arc::new(DiGraph::from_edges(2, [(0, 1)]));
        let engine = Arc::new(BatchEngine::with_defaults(Arc::new(BfsBackend::new(g, 1))));
        let server = start(
            engine,
            ServerConfig {
                read_timeout: Duration::from_millis(300),
                ..tiny_config()
            },
        )
        .unwrap();
        // One byte every 100 ms keeps each individual read alive, so only
        // the whole-request deadline can stop it.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let started = Instant::now();
        for byte in b"GET /healthz HT" {
            if stream.write_all(&[*byte]).is_err() {
                break; // server already cut us off
            }
            let _ = stream.flush();
            std::thread::sleep(Duration::from_millis(100));
        }
        let mut text = String::new();
        let _ = std::io::Read::read_to_string(&mut stream, &mut text);
        // The server responded 408 (or just closed) well before the bytes
        // could have finished arriving at trickle pace.
        assert!(
            text.is_empty() || text.contains("408"),
            "unexpected response {text:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "deadline must fire, not wait out the trickle"
        );
        // The handler slot came back: a normal client is served.
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        assert!(client.get("/healthz").unwrap().is_ok());
    }

    fn scrape(client: &mut BlockingClient) -> kreach_datasets::PromScrape {
        let response = client.get("/metrics").unwrap();
        assert!(response.is_ok());
        kreach_datasets::PromScrape::parse(&response.body_text())
            .expect("exposition must parse line by line")
    }

    #[test]
    fn healthz_tracks_the_mutation_epoch() {
        let server = dynamic_server();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        assert!(client
            .get("/healthz")
            .unwrap()
            .body_text()
            .contains("\"epoch\":0"));
        assert!(client.post("/update", b"+ 1 2\n").unwrap().is_ok());
        let health = client.get("/healthz").unwrap().body_text();
        assert!(
            health.contains("\"backend\":\"dynamic-k-reach\""),
            "{health}"
        );
        assert!(health.contains("\"epoch\":1"), "{health}");
    }

    #[test]
    fn metrics_round_trip_parses_and_counters_are_monotone() {
        let server = dynamic_server();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        let before = scrape(&mut client);
        assert_eq!(before.type_of("kreach_queries_total"), Some("counter"));
        assert_eq!(
            before.type_of("kreach_request_duration_seconds"),
            Some("histogram")
        );
        assert_eq!(before.type_of("kreach_uptime_seconds"), Some("gauge"));
        assert_eq!(before.sum_of("kreach_engine_queries_by_case_total"), 0.0);

        // Straddle a batch: four batch queries plus one single-query GET.
        assert!(client
            .post("/batch", b"0 1\n0 2\n1 2\n2 0\n")
            .unwrap()
            .is_ok());
        assert!(client.get("/reach?s=0&t=1").unwrap().is_ok());
        let after = scrape(&mut client);

        // The per-case counters sum to the request count (Table 8 live).
        assert_eq!(after.value("kreach_queries_total"), Some(5.0));
        assert_eq!(after.value("kreach_engine_queries_total"), Some(5.0));
        assert_eq!(after.sum_of("kreach_engine_queries_by_case_total"), 5.0);
        assert_eq!(
            after.sum_of("kreach_engine_queries_by_resolution_total"),
            5.0
        );
        // Every query classified: nothing fell into the unknown bucket.
        assert_eq!(
            after.labeled("kreach_engine_queries_by_case_total", "case", "unknown"),
            Some(0.0)
        );

        // Cumulative series never move backwards across scrapes.
        let mut compared = 0;
        for sample in before.samples() {
            let cumulative = sample.name.ends_with("_total")
                || sample.name.ends_with("_bucket")
                || sample.name.ends_with("_sum")
                || sample.name.ends_with("_count");
            if !cumulative {
                continue;
            }
            let now = after
                .samples()
                .iter()
                .find(|s| s.name == sample.name && s.labels == sample.labels)
                .unwrap_or_else(|| panic!("series {}{:?} vanished", sample.name, sample.labels));
            assert!(
                now.value >= sample.value,
                "{}{:?} went backwards: {} -> {}",
                sample.name,
                sample.labels,
                sample.value,
                now.value
            );
            compared += 1;
        }
        assert!(compared > 20, "only {compared} cumulative series compared");
    }

    #[test]
    fn concurrent_scrapes_under_load_stay_valid() {
        let g = DiGraph::from_edges(3, [(0, 1)]);
        let engine = Arc::new(BatchEngine::new(
            Arc::new(DynamicKReachBackend::new(g, 2, DynamicOptions::default())),
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        ));
        // Handlers own a keep-alive connection for its lifetime: three
        // held-open clients (two loaders + the scraper) need headroom.
        let server = start(
            engine,
            ServerConfig {
                handlers: 4,
                ..tiny_config()
            },
        )
        .unwrap();
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let loaders: Vec<_> = (0..2)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut client = BlockingClient::connect(addr).unwrap();
                    let mut sent = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        assert!(client.post("/batch", b"0 1\n1 2\n0 2\n").unwrap().is_ok());
                        sent += 3;
                    }
                    sent
                })
            })
            .collect();
        let mut client = BlockingClient::connect(addr).unwrap();
        let mut last = 0.0;
        for _ in 0..10 {
            let mid = scrape(&mut client);
            let queries = mid.value("kreach_queries_total").unwrap();
            assert!(queries >= last, "queries went backwards under load");
            // One scrape is internally consistent even while batches land.
            assert_eq!(
                mid.sum_of("kreach_engine_queries_by_case_total"),
                mid.value("kreach_engine_queries_total").unwrap()
            );
            last = queries;
        }
        stop.store(true, Ordering::Relaxed);
        let sent: u64 = loaders.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(sent > 0);
        let final_scrape = scrape(&mut client);
        assert_eq!(
            final_scrape.value("kreach_queries_total"),
            Some(sent as f64)
        );
    }

    #[test]
    fn slow_queries_land_in_the_log_with_their_spans() {
        let g = Arc::new(DiGraph::from_edges(4, [(0, 1), (1, 2)]));
        let engine = Arc::new(BatchEngine::with_recorder(
            Arc::new(BfsBackend::new(g, 2)),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
            Recorder::new(1024),
        ));
        let server = start(
            engine,
            ServerConfig {
                slow_query_us: 1, // everything is slow at a 1µs threshold
                ..tiny_config()
            },
        )
        .unwrap();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        assert!(client.get("/reach?s=0&t=2").unwrap().is_ok());
        assert!(client.get("/healthz").unwrap().is_ok());
        // The slow entry is recorded after the response is written, so only
        // requests *before* the latest one are guaranteed logged: on a
        // keep-alive connection the server finishes request N before it
        // reads request N+1.
        let dump = client.get("/stats?slow=1").unwrap();
        assert!(dump.is_ok());
        assert!(server.slow_queries() >= 2);
        let json = dump.body_text();
        assert!(json.trim_end().starts_with('['), "{json}");
        assert!(json.contains("\"op\":\"GET /reach\""), "{json}");
        assert!(json.contains("server.request"), "{json}");
        assert!(json.contains("engine.query"), "{json}");
        // The handle-side dump sees the same ring (plus the /stats request
        // itself, which also crossed the threshold by now).
        assert!(server.slow_log_json().contains("\"op\":\"GET /reach\""));
        server.shutdown();
        let report = server.join();
        assert!(report.clean);
        assert!(report.slow_queries >= 2);
    }

    #[test]
    fn slow_log_polls_are_non_destructive_and_drain_is_explicit() {
        let g = Arc::new(DiGraph::from_edges(4, [(0, 1), (1, 2)]));
        let engine = Arc::new(BatchEngine::with_defaults(Arc::new(BfsBackend::new(g, 2))));
        let server = start(
            engine,
            ServerConfig {
                slow_query_us: 1,
                ..tiny_config()
            },
        )
        .unwrap();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        assert!(client.get("/reach?s=0&t=2").unwrap().is_ok());
        assert!(client.get("/healthz").unwrap().is_ok());
        // Two dashboard polls in a row see the same entries: polling must
        // not erase what an operator is about to read.
        let first = client.get("/stats?slow=1").unwrap().body_text();
        assert!(first.contains("\"op\":\"GET /reach\""), "{first}");
        let second = client.get("/stats?slow=1").unwrap().body_text();
        assert!(second.contains("\"op\":\"GET /reach\""), "{second}");
        // An explicit drain consumes the ring; the monotone total survives.
        let total_before = server.slow_queries();
        let drained = client.get("/stats?slow=1&drain=1").unwrap().body_text();
        assert!(drained.contains("\"op\":\"GET /reach\""), "{drained}");
        // Only requests finished before the drain request are guaranteed
        // gone (the drain itself lands in the ring after responding).
        let after = client.get("/stats?slow=1").unwrap().body_text();
        assert!(!after.contains("\"op\":\"GET /reach\""), "{after}");
        assert!(server.slow_queries() >= total_before, "total is monotone");
    }

    #[test]
    fn windowed_gauges_round_trip_and_stats_carries_the_window_block() {
        let server = dynamic_server();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        assert!(client
            .post("/batch", b"0 1\n0 2\n1 2\n2 0\n")
            .unwrap()
            .is_ok());
        let scrape = scrape(&mut client);
        // One series per window width, all parseable as gauges.
        for family in [
            "kreach_rps_window",
            "kreach_qps_window",
            "kreach_request_p50_seconds_window",
            "kreach_request_p99_seconds_window",
            "kreach_cache_hit_rate_window",
            "kreach_shed_rate_window",
        ] {
            assert_eq!(scrape.type_of(family), Some("gauge"), "{family}");
            for w in ["1s", "10s", "60s"] {
                assert!(
                    scrape.labeled(family, "w", w).is_some(),
                    "{family} missing w={w}"
                );
            }
        }
        // The batch just served: the 60s window saw its queries.
        assert!(scrape.labeled("kreach_qps_window", "w", "60s").unwrap() > 0.0);
        // Case mix: 6 classes × 3 windows, shares within [0, 1] summing to
        // 1 per window (queries were served inside the 60s window).
        let mix = scrape.samples_of("kreach_case_share_window");
        assert_eq!(mix.len(), 18, "6 classes x 3 windows");
        let sum_60s: f64 = mix
            .iter()
            .filter(|s| s.labels.iter().any(|(k, v)| k == "w" && v == "60s"))
            .map(|s| s.value)
            .sum();
        assert!((sum_60s - 1.0).abs() < 1e-9, "shares sum to 1: {sum_60s}");

        // /stats carries the same data as a JSON block.
        let stats = client.get("/stats").unwrap().body_text();
        for field in [
            "\"window\":{\"1s\":{",
            "\"10s\":{",
            "\"60s\":{",
            "\"qps\":",
            "\"p99_micros\":",
            "\"by_case\":{",
            "\"flight_events\":",
        ] {
            assert!(stats.contains(field), "missing {field} in {stats}");
        }
    }

    #[test]
    fn exemplars_ride_the_request_histogram_and_round_trip() {
        let g = Arc::new(DiGraph::from_edges(4, [(0, 1), (1, 2)]));
        let engine = Arc::new(BatchEngine::with_recorder(
            Arc::new(BfsBackend::new(g, 2)),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
            Recorder::new(1024),
        ));
        let server = start(
            engine,
            ServerConfig {
                slow_query_us: 1, // everything is slow: an exemplar is guaranteed
                ..tiny_config()
            },
        )
        .unwrap();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        assert!(client.get("/reach?s=0&t=2").unwrap().is_ok());
        let scrape = scrape(&mut client);
        let exemplar = scrape
            .samples_of("kreach_request_duration_seconds_bucket")
            .iter()
            .find_map(|s| s.exemplar.clone())
            .expect("a slow request pins an exemplar to its latency bucket");
        let trace_id: u64 = exemplar
            .label("trace_id")
            .expect("exemplar carries the trace id")
            .parse()
            .expect("trace id is numeric");
        assert!(trace_id > 0);
        assert!(exemplar.value > 0.0);
    }

    #[test]
    fn durability_stats_render_and_round_trip_when_present() {
        let g = Arc::new(DiGraph::from_edges(4, [(0, 1), (1, 2)]));
        let engine = Arc::new(BatchEngine::with_defaults(Arc::new(BfsBackend::new(g, 2))));
        let durability = Arc::new(DurabilityStats::new());
        durability.wal_appends.store(3, Ordering::Relaxed);
        durability.wal_records.store(7, Ordering::Relaxed);
        durability.wal_bytes.store(512, Ordering::Relaxed);
        durability.wal_segments.store(2, Ordering::Relaxed);
        durability.wal_write.record(40_000);
        durability.wal_fsync.record(2_000_000);
        durability.note_checkpoint(5, 4096, 9_000_000);
        let obs = ServerObs {
            durability: Some(Arc::clone(&durability)),
            ..ServerObs::default()
        };
        let server = start_with_obs(engine, tiny_config(), obs).unwrap();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        let dur_scrape = scrape(&mut client);
        assert_eq!(dur_scrape.value("kreach_wal_appends_total"), Some(3.0));
        assert_eq!(dur_scrape.value("kreach_wal_records_total"), Some(7.0));
        assert_eq!(dur_scrape.value("kreach_wal_bytes_total"), Some(512.0));
        assert_eq!(dur_scrape.value("kreach_wal_segments"), Some(2.0));
        assert_eq!(dur_scrape.value("kreach_checkpoints_total"), Some(1.0));
        assert_eq!(dur_scrape.value("kreach_last_checkpoint_epoch"), Some(5.0));
        assert_eq!(
            dur_scrape.value("kreach_last_checkpoint_bytes"),
            Some(4096.0)
        );
        for hist in [
            "kreach_wal_append_write_seconds",
            "kreach_wal_fsync_seconds",
            "kreach_checkpoint_duration_seconds",
        ] {
            assert_eq!(dur_scrape.type_of(hist), Some("histogram"), "{hist}");
            assert_eq!(
                dur_scrape.value(&format!("{hist}_count")),
                Some(1.0),
                "{hist}"
            );
        }
        let age = dur_scrape.value("kreach_checkpoint_age_seconds").unwrap();
        assert!(age >= 0.0, "a checkpoint happened: age is real, got {age}");

        // /healthz gains the durable-staleness fields, with the engine's
        // `"epoch":N` untouched for existing probes.
        let health = client.get("/healthz").unwrap().body_text();
        for field in [
            "\"epoch\":0",
            "\"checkpoint_age_secs\":",
            "\"last_checkpoint_epoch\":5",
            "\"wal_segments\":2",
            "\"wal_lag\":0",
        ] {
            assert!(health.contains(field), "missing {field} in {health}");
        }

        // Without durability stats, none of it renders and /healthz stays
        // minimal.
        let plain = bfs_server();
        let mut client = BlockingClient::connect(plain.addr()).unwrap();
        let plain_scrape = scrape(&mut client);
        assert_eq!(plain_scrape.value("kreach_wal_appends_total"), None);
        assert!(!client
            .get("/healthz")
            .unwrap()
            .body_text()
            .contains("wal_segments"));
    }

    #[test]
    fn flightrec_endpoint_serves_events_and_dumps_when_configured() {
        let dir = std::env::temp_dir().join(format!("kreach-flightrec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = DiGraph::from_edges(3, [(0, 1)]);
        let engine = Arc::new(BatchEngine::new(
            Arc::new(DynamicKReachBackend::new(g, 2, DynamicOptions::default())),
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        ));
        let obs = ServerObs {
            flight_dump_dir: Some(dir.clone()),
            ..ServerObs::default()
        };
        let events = Arc::clone(&obs.events);
        let server = start_with_obs(engine, tiny_config(), obs).unwrap();
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        // An applied mutation records an epoch event through the engine.
        assert!(client.post("/update", b"+ 1 2\n").unwrap().is_ok());
        let response = client.post("/debug/flightrec", &[]).unwrap();
        assert!(response.is_ok());
        let body = response.body_text();
        let epoch_line = body
            .lines()
            .find(|l| l.contains("\"kind\":\"epoch\""))
            .unwrap_or_else(|| panic!("no epoch event in {body}"));
        assert!(epoch_line.contains("\"detail\":\"epoch=1"), "{epoch_line}");
        assert!(epoch_line.starts_with('{') && epoch_line.ends_with('}'));
        // The dump landed on disk as the same JSON-lines document.
        let dumped: Vec<_> = std::fs::read_dir(&dir)
            .expect("dump dir created")
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("flightrec-") && n.ends_with(".jsonl"))
            })
            .collect();
        assert_eq!(dumped.len(), 1, "{dumped:?}");
        let on_disk = std::fs::read_to_string(&dumped[0]).unwrap();
        assert!(on_disk.contains("\"kind\":\"epoch\""), "{on_disk}");
        assert_eq!(events.total(), body.lines().count() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
