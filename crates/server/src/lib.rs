//! # kreach-server
//!
//! The network front end of the k-reach serving system: a hermetic
//! (`std::net`-only) TCP listener that wraps a
//! [`kreach_engine::BatchEngine`] and serves live query and mutation
//! traffic, with admission control and graceful drain.
//!
//! ## Protocols
//!
//! One listener speaks two protocols, sniffed from the first line of each
//! connection:
//!
//! * **HTTP/1.1** (keep-alive supported):
//!   * `GET /reach?s=..&t=..[&k=..]` — one k-hop reachability query.
//!   * `POST /batch` — a pipelined batch: the body is a query workload
//!     (`s t [k]` lines), answered **in order** via the engine's batch
//!     path; the response body is byte-identical to `kreach batch` output
//!     for the same workload.
//!   * `POST /update` — a mixed stream in the `kreach update` grammar
//!     (`+ u v` / `- u v` / `s t [k]`); mutations bump the engine's cache
//!     epoch, so every later query on any connection reflects them.
//!   * `GET /stats` — engine snapshot, cache counters and server metrics
//!     as JSON; `GET /healthz` — liveness probe.
//!   * `POST /shutdown` — begin a graceful drain.
//! * **Line protocol**: any first line that is not an HTTP request line is
//!   treated as one operation in the same mixed-workload grammar; each line
//!   is answered with one response line (`17 4023 3 reachable`,
//!   `+ 17 9000 applied epoch=3`, or `error: ...`), streamed as they
//!   arrive. `stats` prints the stats JSON; `quit` ends the session.
//!
//! Request *and* response wire formats are shared with the offline workload
//! files through [`kreach_datasets`], which is what lets the integration
//! tests assert that network answers are byte-identical to the CLI path.
//!
//! ## Admission control
//!
//! A bounded in-flight budget ([`ServerConfig::max_inflight`]) counts
//! admitted connections; past it the acceptor sheds new connections with a
//! fast `503` that never touches the engine. Request bodies above
//! [`ServerConfig::max_body_bytes`] are refused with `413` before a single
//! body byte is read, and a socket timeout bounds slow clients — overload
//! degrades into fast refusals instead of memory growth.
//!
//! ## Example
//!
//! ```
//! use kreach_engine::{BatchEngine, BfsBackend, EngineConfig};
//! use kreach_graph::DiGraph;
//! use kreach_server::{client::BlockingClient, start, ServerConfig};
//! use std::sync::Arc;
//!
//! let g = Arc::new(DiGraph::from_edges(3, [(0, 1), (1, 2)]));
//! let engine = Arc::new(BatchEngine::new(
//!     Arc::new(BfsBackend::new(g, 2)),
//!     EngineConfig { workers: 1, ..EngineConfig::default() },
//! ));
//! let handle = start(engine, ServerConfig::default()).unwrap();
//! let mut client = BlockingClient::connect(handle.addr()).unwrap();
//! let response = client.get("/reach?s=0&t=2&k=2").unwrap();
//! assert_eq!(response.body_text(), "0 2 2 reachable\n");
//! handle.shutdown();
//! assert!(handle.join().clean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
mod server;

pub use metrics::{MetricsSnapshot, ServerMetrics};
pub use server::{start, start_with_obs, DrainReport, ServerConfig, ServerHandle, ServerObs};
