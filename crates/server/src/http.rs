//! Minimal HTTP/1.1 request parsing and response writing over blocking I/O.
//!
//! This is deliberately not a general HTTP implementation: it parses exactly
//! the request shapes the k-reach protocol uses (a request line, a bounded
//! header block, an optional `Content-Length` body) and rejects everything
//! else early with the right status code. Every read is bounded — request
//! line, header block, and body all have byte caps — so a hostile or broken
//! client can never make a handler allocate without limit.

use std::cell::RefCell;
use std::io::{BufRead, Write};
use std::time::Instant;

/// Cap on the request line and on any single header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Cap on the total header block, in bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Cap on the number of headers.
pub const MAX_HEADERS: usize = 64;

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The socket read timed out — a slow or stalled client.
    Timeout,
    /// The request is malformed; respond 400 with the message.
    Bad(String),
    /// The declared body exceeds the configured cap; respond 413 without
    /// reading the body.
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Some other I/O failure (client reset, broken pipe); just drop the
    /// connection.
    Io(std::io::Error),
}

impl RequestError {
    fn from_io(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RequestError::Timeout,
            _ => RequestError::Io(e),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Timeout => write!(f, "read timed out"),
            RequestError::Bad(message) => write!(f, "{message}"),
            RequestError::TooLarge { declared, limit } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            RequestError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Reads one `\n`-terminated line (CR stripped), erroring once it exceeds
/// `max` bytes. Returns `Ok(None)` on clean EOF before any byte.
///
/// `deadline` bounds the *whole* line, not just each read: the per-read
/// socket timeout alone cannot stop a client trickling one byte per
/// almost-timeout (which would stretch an 8 KB line into hours of pinned
/// handler time), so the loop re-checks the deadline between reads and
/// reports [`RequestError::Timeout`] once it has passed.
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    max: usize,
    deadline: Option<Instant>,
) -> Result<Option<String>, RequestError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if deadline.is_some_and(|at| Instant::now() > at) {
            return Err(RequestError::Timeout);
        }
        let (done, used) = {
            let buf = match reader.fill_buf() {
                Ok(b) => b,
                Err(e) => return Err(RequestError::from_io(e)),
            };
            if buf.is_empty() {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(RequestError::Bad("stream ended mid-line".to_string()));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&buf[..i]);
                    (true, i + 1)
                }
                None => {
                    line.extend_from_slice(buf);
                    (false, buf.len())
                }
            }
        };
        reader.consume(used);
        if line.len() > max {
            return Err(RequestError::Bad(format!("line exceeds {max} bytes")));
        }
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| RequestError::Bad("line is not valid UTF-8".to_string()));
        }
    }
}

/// Whether a first line announces an HTTP request (as opposed to the plain
/// line protocol): its last space-separated token is an `HTTP/x` version.
/// Unsupported versions still sniff as HTTP so they draw a proper `400`
/// instead of a line-protocol parse error.
pub fn is_http_request_line(line: &str) -> bool {
    line.rsplit(' ')
        .next()
        .is_some_and(|token| token.starts_with("HTTP/"))
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this request
    /// (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
    /// Bytes consumed by the header block (for traffic accounting).
    pub head_bytes: usize,
}

impl Request {
    /// Parses the remainder of a request whose request line has already been
    /// read (the listener reads it first to sniff HTTP vs. line protocol).
    /// `deadline` bounds the whole header block and body against trickling
    /// clients (see [`read_line_bounded`]).
    pub fn parse<R: BufRead>(
        request_line: &str,
        reader: &mut R,
        max_body: usize,
        deadline: Option<Instant>,
    ) -> Result<Request, RequestError> {
        let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) => (m, t, v),
                _ => {
                    return Err(RequestError::Bad(format!(
                        "malformed request line {request_line:?}"
                    )))
                }
            };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(RequestError::Bad(format!(
                "unsupported protocol version {version:?}"
            )));
        }
        if !target.starts_with('/') {
            return Err(RequestError::Bad(format!(
                "request target {target:?} must be an absolute path"
            )));
        }
        let (path, query_text) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let query: Vec<(String, String)> = query_text
            .split('&')
            .filter(|pair| !pair.is_empty())
            .map(|pair| match pair.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (pair.to_string(), String::new()),
            })
            .collect();

        let mut headers = Vec::new();
        let mut head_bytes = 0usize;
        let mut content_length = 0usize;
        let mut close = version == "HTTP/1.0";
        loop {
            let line = read_line_bounded(reader, MAX_LINE_BYTES, deadline)?
                .ok_or_else(|| RequestError::Bad("stream ended inside headers".to_string()))?;
            head_bytes += line.len() + 2;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS || head_bytes > MAX_HEADER_BYTES {
                return Err(RequestError::Bad("header block too large".to_string()));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(RequestError::Bad(format!("malformed header {line:?}")));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            match name.as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| {
                        RequestError::Bad(format!("invalid content-length {value:?}"))
                    })?;
                }
                "transfer-encoding" => {
                    return Err(RequestError::Bad(
                        "transfer-encoding is not supported; send a content-length body"
                            .to_string(),
                    ));
                }
                "connection" => {
                    let v = value.to_ascii_lowercase();
                    if v.contains("close") {
                        close = true;
                    } else if v.contains("keep-alive") {
                        close = false;
                    }
                }
                _ => {}
            }
            headers.push((name, value));
        }

        let body = if content_length == 0 {
            Vec::new()
        } else {
            if content_length > max_body {
                return Err(RequestError::TooLarge {
                    declared: content_length,
                    limit: max_body,
                });
            }
            // Single `read` calls with a deadline check between them: each
            // read is bounded by the socket timeout, and the deadline stops
            // a trickling client from stretching the body out indefinitely.
            let mut body = vec![0u8; content_length];
            let mut filled = 0usize;
            while filled < content_length {
                if deadline.is_some_and(|at| Instant::now() > at) {
                    return Err(RequestError::Timeout);
                }
                match reader.read(&mut body[filled..]) {
                    Ok(0) => {
                        return Err(RequestError::Bad(format!(
                            "request body truncated (content-length {content_length})"
                        )))
                    }
                    Ok(n) => filled += n,
                    Err(e) => return Err(RequestError::from_io(e)),
                }
            }
            body
        };

        Ok(Request {
            method: method.to_string(),
            path: path.to_string(),
            query,
            headers,
            body,
            close,
            head_bytes,
        })
    }

    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

thread_local! {
    /// Per-thread response assembly buffer, reused across requests so a
    /// warmed handler writes responses without fresh heap allocations (it
    /// grows to the largest response the thread has sent and stays there).
    static RESPONSE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Writes a complete response (status line, headers, body) and flushes.
/// Returns the number of bytes written.
///
/// Head and body go out as **one** write: two small writes per response
/// interact with Nagle + delayed ACK into ~40 ms of added latency per
/// request on loopback, swamping the µs-scale query underneath. The message
/// is assembled in a per-thread reusable buffer.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<usize> {
    write_response_with(writer, status, content_type, body, close, &[])
}

/// [`write_response`] with extra `(name, value)` headers appended after the
/// fixed ones — how 503 responses carry `Retry-After` without widening
/// every call site. Same single-write assembly.
pub fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<usize> {
    RESPONSE_BUF.with(|cell| {
        let mut message = cell.borrow_mut();
        message.clear();
        write!(
            message,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            status,
            reason(status),
            content_type,
            body.len(),
            if close { "close" } else { "keep-alive" },
        )?;
        for (name, value) in extra_headers {
            write!(message, "{name}: {value}\r\n")?;
        }
        message.extend_from_slice(b"\r\n");
        message.extend_from_slice(body);
        writer.write_all(&message)?;
        writer.flush()?;
        Ok(message.len())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str, max_body: usize) -> Result<Request, RequestError> {
        let mut reader = BufReader::new(text.as_bytes());
        let line = read_line_bounded(&mut reader, MAX_LINE_BYTES, None)
            .unwrap()
            .expect("request line");
        Request::parse(&line, &mut reader, max_body, None)
    }

    #[test]
    fn parses_a_get_with_query_string() {
        let req = parse(
            "GET /reach?s=17&t=4023&k=3 HTTP/1.1\r\nHost: x\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/reach");
        assert_eq!(
            req.query,
            vec![
                ("s".to_string(), "17".to_string()),
                ("t".to_string(), "4023".to_string()),
                ("k".to_string(), "3".to_string())
            ]
        );
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse(
            "POST /batch HTTP/1.1\r\nContent-Length: 8\r\n\r\n1 2 3\n4 ",
            1024,
        )
        .unwrap();
        assert_eq!(req.body, b"1 2 3\n4 ");
    }

    #[test]
    fn http_10_and_connection_close_request_closing() {
        assert!(parse("GET / HTTP/1.0\r\n\r\n", 0).unwrap().close);
        assert!(
            parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 0)
                .unwrap()
                .close
        );
        assert!(
            !parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 0)
                .unwrap()
                .close
        );
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for line in [
            "GET HTTP/1.1\r\n\r\n",            // missing target
            "GET / nonsense HTTP/1.1\r\n\r\n", // four tokens
            "GET / HTTP/2.0\r\n\r\n",          // unsupported version
            "GET reach HTTP/1.1\r\n\r\n",      // relative target
        ] {
            assert!(
                matches!(parse(line, 0), Err(RequestError::Bad(_))),
                "{line:?}"
            );
        }
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let err = parse("POST /batch HTTP/1.1\r\nContent-Length: 4096\r\n\r\n", 100).unwrap_err();
        match err {
            RequestError::TooLarge { declared, limit } => {
                assert_eq!(declared, 4096);
                assert_eq!(limit, 100);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_bodies_and_bad_headers() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort", 1024).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        let err = parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 0).unwrap_err();
        assert!(err.to_string().contains("malformed header"), "{err}");
        let err = parse("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 0).unwrap_err();
        assert!(err.to_string().contains("invalid content-length"), "{err}");
        let err = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 0).unwrap_err();
        assert!(err.to_string().contains("transfer-encoding"), "{err}");
    }

    #[test]
    fn bounded_line_reading_enforces_the_cap() {
        let long = format!("GET /{} HTTP/1.1\r\n", "x".repeat(2 * MAX_LINE_BYTES));
        let mut reader = BufReader::new(long.as_bytes());
        let err = read_line_bounded(&mut reader, MAX_LINE_BYTES, None).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        // Clean EOF is None, not an error.
        let mut empty = BufReader::new(&b""[..]);
        assert!(read_line_bounded(&mut empty, 16, None).unwrap().is_none());
        // EOF mid-line is an error.
        let mut partial = BufReader::new(&b"no newline"[..]);
        assert!(read_line_bounded(&mut partial, 1024, None).is_err());
        // An already-passed deadline times the read out before any byte.
        let mut ready = BufReader::new(&b"data\n"[..]);
        let past = Instant::now() - std::time::Duration::from_secs(1);
        assert!(matches!(
            read_line_bounded(&mut ready, 1024, Some(past)),
            Err(RequestError::Timeout)
        ));
    }

    #[test]
    fn sniffs_http_request_lines_from_line_protocol() {
        assert!(is_http_request_line("GET /healthz HTTP/1.1"));
        assert!(is_http_request_line("POST /batch HTTP/1.0"));
        // Unsupported versions still route to HTTP for a clean 400.
        assert!(is_http_request_line("GET / HTTP/9.9"));
        assert!(!is_http_request_line("17 4023 3"));
        assert!(!is_http_request_line("+ 17 9000"));
        assert!(!is_http_request_line("stats"));
        assert!(!is_http_request_line(""));
    }

    #[test]
    fn responses_render_with_length_and_connection_header() {
        let mut out = Vec::new();
        let n = write_response(&mut out, 200, "text/plain", b"ok\n", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok\n"), "{text}");
        assert_eq!(n, text.len());
        let mut out = Vec::new();
        write_response(&mut out, 503, "text/plain", b"shed\n", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("503 Service Unavailable"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
    }
}
