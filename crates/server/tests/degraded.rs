//! End-to-end degraded-mode serving: a durability-sink failure must flip
//! the whole HTTP surface into explicit read-only mode — `POST /update`
//! answers 503 + `Retry-After`, `/healthz` reports `"status":"degraded"`
//! with a cause, `/metrics` raises the `kreach_degraded` gauge, the flight
//! recorder logs `degraded` — and the background prober must restore
//! read-write serving (plus a `recovered` event) once the sink heals.
//! Reads keep working throughout.

use kreach_core::dynamic::DynamicOptions;
use kreach_engine::engine::DurabilitySink;
use kreach_engine::{
    spawn_degraded_prober, BatchEngine, DynamicKReachBackend, EngineConfig, Reachability,
};
use kreach_graph::{DiGraph, EdgeUpdate};
use kreach_obs::{DurabilityStats, FlightRecorder};
use kreach_server::client::BlockingClient;
use kreach_server::{start_with_obs, ServerConfig, ServerObs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A sink that fails on command — the storage fault, minus the disk.
struct FlakySink {
    fail: AtomicBool,
}

impl DurabilitySink for FlakySink {
    fn append(&self, _epoch: u64, _updates: &[EdgeUpdate]) -> std::io::Result<()> {
        if self.fail.load(Ordering::Relaxed) {
            Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "injected: no space left on device",
            ))
        } else {
            Ok(())
        }
    }
}

fn ring_graph(n: u32) -> DiGraph {
    DiGraph::from_edges(
        n as usize,
        (0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>(),
    )
}

fn serve() -> (
    kreach_server::ServerHandle,
    Arc<BatchEngine>,
    Arc<FlakySink>,
    Arc<FlightRecorder>,
) {
    let backend = Arc::new(DynamicKReachBackend::new(
        ring_graph(16),
        3,
        DynamicOptions::default(),
    ));
    let engine = Arc::new(BatchEngine::new(
        backend as Arc<dyn Reachability>,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    ));
    let sink = Arc::new(FlakySink {
        fail: AtomicBool::new(false),
    });
    engine.set_durability(Arc::clone(&sink) as Arc<dyn DurabilitySink>);
    let events = Arc::new(FlightRecorder::new(256));
    let handle = start_with_obs(
        Arc::clone(&engine),
        ServerConfig::default(),
        ServerObs {
            events: Arc::clone(&events),
            ..ServerObs::default()
        },
    )
    .expect("start server");
    (handle, engine, sink, events)
}

fn client(handle: &kreach_server::ServerHandle) -> BlockingClient {
    let c = BlockingClient::connect(handle.addr()).expect("connect");
    c.set_timeout(Duration::from_secs(10)).expect("timeout");
    c
}

fn event_kinds(events: &FlightRecorder) -> Vec<String> {
    events.events().iter().map(|e| e.kind.to_string()).collect()
}

#[test]
fn degrade_then_recover_across_the_http_surface() {
    let (handle, engine, sink, events) = serve();
    let mut c = client(&handle);

    // Healthy: updates ack, healthz is ok, the gauge is 0.
    let r = c.post("/update", b"+ 0 5\n").expect("update");
    assert_eq!(r.status, 200, "{}", r.body_text());
    let r = c.get("/healthz").expect("healthz");
    assert_eq!(r.status, 200);
    assert!(
        r.body_text().contains("\"status\":\"ok\""),
        "{}",
        r.body_text()
    );
    let r = c.get("/metrics").expect("metrics");
    assert!(
        r.body_text().contains("kreach_degraded 0"),
        "gauge should be 0"
    );

    // Break the sink: the next effective update must be rejected with 503 +
    // Retry-After, never half-applied.
    sink.fail.store(true, Ordering::Relaxed);
    let r = c.post("/update", b"+ 0 7\n").expect("update");
    assert_eq!(r.status, 503, "{}", r.body_text());
    assert_eq!(r.retry_after, Some(1), "503 must carry Retry-After");
    assert!(engine.is_degraded());
    // The rejected edge is invisible to queries (log-before-apply).
    let r = c.get("/reach?s=0&t=7&k=1").expect("reach");
    assert_eq!(r.status, 200, "reads must keep working while degraded");
    assert!(
        r.body_text().contains("unreachable"),
        "unacked update visible: {}",
        r.body_text()
    );

    // The whole surface reports the degradation.
    let r = c.get("/healthz").expect("healthz");
    assert_eq!(r.status, 503);
    assert_eq!(r.retry_after, Some(1));
    let body = r.body_text();
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"cause\":"), "{body}");
    assert!(body.contains("no space left"), "{body}");
    let r = c.get("/metrics").expect("metrics");
    assert!(
        r.body_text().contains("kreach_degraded 1"),
        "gauge should be 1"
    );
    assert!(
        event_kinds(&events).iter().any(|k| k == "degraded"),
        "missing degraded flight event: {:?}",
        event_kinds(&events)
    );

    // Heal the sink; the background prober must restore read-write serving
    // without any operator action.
    let prober = spawn_degraded_prober(
        Arc::clone(&engine),
        Duration::from_millis(10),
        Duration::from_millis(50),
    );
    sink.fail.store(false, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.is_degraded() {
        assert!(
            Instant::now() < deadline,
            "prober never recovered the engine"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    prober.stop();

    let r = c.post("/update", b"+ 0 9\n").expect("update");
    assert_eq!(
        r.status,
        200,
        "recovered engine must ack: {}",
        r.body_text()
    );
    let r = c.get("/healthz").expect("healthz");
    assert_eq!(r.status, 200);
    assert!(
        r.body_text().contains("\"status\":\"ok\""),
        "{}",
        r.body_text()
    );
    let r = c.get("/metrics").expect("metrics");
    assert!(
        r.body_text().contains("kreach_degraded 0"),
        "gauge should drop to 0"
    );
    let kinds = event_kinds(&events);
    assert!(
        kinds.iter().any(|k| k == "recovered"),
        "missing recovered flight event: {kinds:?}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn healthz_reports_wal_lag_breach_as_degraded() {
    let backend = Arc::new(DynamicKReachBackend::new(
        ring_graph(16),
        3,
        DynamicOptions::default(),
    ));
    let engine = Arc::new(BatchEngine::new(
        backend as Arc<dyn Reachability>,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    ));
    let durability = Arc::new(DurabilityStats::new());
    let handle = start_with_obs(
        Arc::clone(&engine),
        ServerConfig {
            max_wal_lag: Some(1),
            ..ServerConfig::default()
        },
        ServerObs {
            durability: Some(Arc::clone(&durability)),
            ..ServerObs::default()
        },
    )
    .expect("start server");
    let mut c = client(&handle);

    // lag 0: healthy, and the pre-existing durability fields are present
    // (schema back-compat).
    let r = c.get("/healthz").expect("healthz");
    assert_eq!(r.status, 200);
    let body = r.body_text();
    for field in [
        "\"status\":\"ok\"",
        "\"wal_lag\":0",
        "\"last_checkpoint_epoch\":0",
    ] {
        assert!(body.contains(field), "missing {field} in {body}");
    }

    // Two applied epochs with the checkpoint stuck at 0 → lag 2 > max 1.
    c.post("/update", b"+ 0 5\n").expect("update");
    c.post("/update", b"+ 0 7\n").expect("update");
    assert_eq!(engine.epoch(), 2);
    let r = c.get("/healthz").expect("healthz");
    assert_eq!(r.status, 503);
    assert_eq!(r.retry_after, Some(1));
    let body = r.body_text();
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("wal_lag 2 exceeds --max-wal-lag 1"), "{body}");

    // A catch-up checkpoint clears the breach.
    durability.note_checkpoint(engine.epoch(), 1024, 1_000_000);
    let r = c.get("/healthz").expect("healthz");
    assert_eq!(r.status, 200, "{}", r.body_text());

    handle.shutdown();
    handle.join();
}
