//! # kreach-baselines
//!
//! From-scratch implementations of the systems the K-Reach paper compares
//! against in Section 6, plus the traits the benchmark harness uses to drive
//! them uniformly:
//!
//! * [`bfs`] — online (k-hop) BFS and bidirectional BFS, the index-free
//!   baseline ("µ-BFS" in Table 7).
//! * [`distance`] — a 2-hop-cover distance labeling (pruned landmark
//!   labeling), standing in for the shortest-path distance index \[13\]
//!   ("µ-dist" in Table 7).
//! * [`grail`] — GRAIL \[32\]: randomized DFS interval labels on the
//!   condensation DAG with a label-pruned fallback search.
//! * [`transitive_closure`] — interval-compressed per-source transitive
//!   closure on the condensation DAG, standing in for PWAH \[28\].
//! * [`tree_cover`] — spanning-tree interval labels with propagated non-tree
//!   labels (the Agrawal et al. tree cover), standing in for Path-Tree \[24\].
//!
//! All classic-reachability baselines answer *reachability* queries only —
//! Section 3 of the paper explains why none of them extends to k-hop
//! reachability, which is precisely what the k-reach index adds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod distance;
pub mod grail;
pub mod transitive_closure;
pub mod tree_cover;

pub use bfs::{BidirectionalBfs, OnlineBfs};
pub use distance::DistanceIndex;
pub use grail::Grail;
pub use transitive_closure::IntervalTransitiveClosure;
pub use tree_cover::TreeCover;

use kreach_core::IndexStats;
use kreach_graph::VertexId;

/// A classic reachability index: answers `s → t` queries.
pub trait Reachability {
    /// Short human-readable name used in benchmark tables.
    fn name(&self) -> &'static str;
    /// Whether `t` is reachable from `s` by a directed path of any length.
    fn reachable(&self, s: VertexId, t: VertexId) -> bool;
    /// Approximate in-memory size of the index structures in bytes.
    fn size_bytes(&self) -> usize;
    /// Wall-clock construction time in milliseconds.
    fn build_millis(&self) -> f64;
    /// Bundled statistics, as used by the table harness.
    fn stats(&self) -> IndexStats {
        IndexStats {
            name: self.name().to_string(),
            build_millis: self.build_millis(),
            size_bytes: self.size_bytes(),
            cover_size: None,
            index_edges: None,
        }
    }
}

/// An index (or online method) able to answer k-hop reachability queries for
/// an arbitrary bound `k` supplied at query time.
pub trait KHopReachability {
    /// Whether there is a directed path from `s` to `t` of length at most `k`.
    fn khop_reachable(&self, s: VertexId, t: VertexId, k: u32) -> bool;
}
