//! GRAIL \[32\]: scalable reachability via randomized interval labels.
//!
//! GRAIL assigns every DAG vertex a handful of intervals obtained from
//! randomized depth-first traversals. Interval containment is a *necessary*
//! condition for reachability, so a query either fails fast (some interval
//! does not contain the target's) or falls back to a DFS that prunes with the
//! same labels. Like every DAG-based index, GRAIL answers classic
//! reachability only — Section 3.2 of the paper explains why the interval
//! containment test cannot capture the hop constraint of a k-hop query.

use crate::Reachability;
use kreach_graph::scc::Condensation;
use kreach_graph::{DiGraph, FixedBitSet, GraphView, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// One traversal's labels: for vertex `v`, the interval
/// `[low[v], post[v]]` contains the post-order ranks of every vertex
/// reachable from `v` in the DFS forest (and possibly more).
#[derive(Debug, Clone)]
struct TraversalLabels {
    post: Vec<u32>,
    low: Vec<u32>,
}

impl TraversalLabels {
    #[inline]
    fn contains(&self, u: usize, v: usize) -> bool {
        self.low[u] <= self.post[v] && self.post[v] <= self.post[u]
    }
}

/// The GRAIL reachability index.
#[derive(Debug, Clone)]
pub struct Grail {
    condensation: Condensation,
    labels: Vec<TraversalLabels>,
    build_millis: f64,
}

impl Grail {
    /// Default number of randomized traversals (the GRAIL paper uses 2–5).
    pub const DEFAULT_TRAVERSALS: usize = 3;

    /// Builds a GRAIL index with the default number of traversals.
    pub fn build<G: GraphView>(g: &G) -> Self {
        Self::build_with(g, Self::DEFAULT_TRAVERSALS, 0x0006_a411)
    }

    /// Builds a GRAIL index with `traversals` randomized labelings.
    pub fn build_with<G: GraphView>(g: &G, traversals: usize, seed: u64) -> Self {
        assert!(traversals >= 1, "GRAIL needs at least one traversal");
        let started = Instant::now();
        let condensation = Condensation::new(g);
        let dag = &condensation.dag;
        let mut rng = StdRng::seed_from_u64(seed);
        let labels = (0..traversals)
            .map(|_| Self::one_traversal(dag, &mut rng))
            .collect();
        Grail {
            condensation,
            labels,
            build_millis: started.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Runs one randomized DFS over the DAG and derives `[low, post]` labels.
    fn one_traversal(dag: &DiGraph, rng: &mut StdRng) -> TraversalLabels {
        let mut roots: Vec<VertexId> = dag.vertices().collect();
        roots.shuffle(rng);
        // Children are shuffled per visit; capture distinct seeds per call so
        // that the closure does not borrow `rng` across the forest call.
        let child_seed: u64 = rand::Rng::gen(rng);
        let mut counter = 0u64;
        let forest = kreach_graph::traversal::dfs_forest(dag, &roots, |children| {
            let mut c = children.to_vec();
            counter += 1;
            let mut local = StdRng::seed_from_u64(child_seed.wrapping_add(counter));
            c.shuffle(&mut local);
            c
        });

        let n = dag.vertex_count();
        // Dense post-order ranks 1..=n.
        let mut post = vec![0u32; n];
        for (rank, &v) in forest.postorder.iter().enumerate() {
            post[v.index()] = rank as u32 + 1;
        }
        // low[v] = min(post[v], low of all out-neighbours); vertices in
        // post-order guarantee successors are finalized first.
        let mut low = post.clone();
        for &v in &forest.postorder {
            let mut m = post[v.index()];
            for &w in dag.out_neighbors(v) {
                m = m.min(low[w.index()]);
            }
            low[v.index()] = m;
        }
        TraversalLabels { post, low }
    }

    /// Number of randomized traversals.
    pub fn traversal_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether every label of `u` contains the corresponding label of `v`
    /// (the necessary condition for reachability).
    fn all_contain(&self, u: usize, v: usize) -> bool {
        self.labels.iter().all(|l| l.contains(u, v))
    }

    /// Label-pruned DFS on the DAG from `u` looking for `v`.
    fn pruned_dfs(&self, u: usize, v: usize) -> bool {
        let dag = &self.condensation.dag;
        let mut visited = FixedBitSet::new(dag.vertex_count());
        let mut stack = vec![u];
        visited.insert(u);
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            for &w in dag.out_neighbors(VertexId(x as u32)) {
                let wi = w.index();
                if !visited.contains(wi) && self.all_contain(wi, v) {
                    visited.insert(wi);
                    stack.push(wi);
                }
            }
        }
        false
    }
}

impl Reachability for Grail {
    fn name(&self) -> &'static str {
        "grail"
    }

    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        let cs = self.condensation.map(s).index();
        let ct = self.condensation.map(t).index();
        if cs == ct {
            return true;
        }
        if !self.all_contain(cs, ct) {
            return false;
        }
        self.pruned_dfs(cs, ct)
    }

    fn size_bytes(&self) -> usize {
        let per_traversal = self.condensation.dag.vertex_count() * 2 * std::mem::size_of::<u32>();
        self.labels.len() * per_traversal
            + self.condensation.dag.size_bytes()
            + self.condensation.scc.component.len() * std::mem::size_of::<u32>()
    }

    fn build_millis(&self) -> f64 {
        self.build_millis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreach_graph::generators::GeneratorSpec;
    use kreach_graph::traversal::reachable_bfs;

    fn check_against_bfs(g: &DiGraph, grail: &Grail) {
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(grail.reachable(s, t), reachable_bfs(g, s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn exact_on_small_dag() {
        let g = DiGraph::from_edges(7, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 6)]);
        let grail = Grail::build(&g);
        check_against_bfs(&g, &grail);
    }

    #[test]
    fn exact_on_cyclic_graph() {
        let g = DiGraph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (6, 7),
            ],
        );
        let grail = Grail::build(&g);
        check_against_bfs(&g, &grail);
    }

    #[test]
    fn exact_on_random_graphs_with_various_traversal_counts() {
        for (seed, traversals) in [(1u64, 1usize), (2, 2), (3, 5)] {
            let g = GeneratorSpec::ErdosRenyi { n: 120, m: 300 }.generate(seed);
            let grail = Grail::build_with(&g, traversals, seed);
            assert_eq!(grail.traversal_count(), traversals);
            for s in g.vertices().step_by(7) {
                for t in g.vertices().step_by(5) {
                    assert_eq!(grail.reachable(s, t), reachable_bfs(&g, s, t));
                }
            }
        }
    }

    #[test]
    fn interval_containment_is_necessary() {
        // If the labels say "not contained", BFS must agree it is unreachable.
        let g = GeneratorSpec::LayeredDag {
            n: 200,
            m: 500,
            layers: 10,
            back_edge_fraction: 0.0,
        }
        .generate(4);
        let grail = Grail::build(&g);
        for s in g.vertices().step_by(3) {
            for t in g.vertices().step_by(4) {
                let cs = grail.condensation.map(s).index();
                let ct = grail.condensation.map(t).index();
                if cs != ct && !grail.all_contain(cs, ct) {
                    assert!(
                        !reachable_bfs(&g, s, t),
                        "pruned a reachable pair ({s},{t})"
                    );
                }
            }
        }
    }

    #[test]
    fn reports_size_and_time() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let grail = Grail::build(&g);
        assert!(grail.size_bytes() > 0);
        assert!(grail.build_millis() >= 0.0);
        assert_eq!(grail.name(), "grail");
    }
}
