//! Online BFS baselines: no index, every query traverses the graph.
//!
//! This is the naive method the introduction dismisses for online query
//! processing ("a BFS from a celebrity ... is clearly out of the question")
//! and the "µ-BFS" row of Table 7. The bidirectional variant is included as
//! an additional, stronger online baseline.

use crate::{KHopReachability, Reachability};
use kreach_graph::traversal::{khop_reachable_bfs, khop_reachable_bidirectional, reachable_bfs};
use kreach_graph::{DiGraph, GraphView, VersionedAdjGraph, VertexId};

/// Index-free forward BFS over any [`GraphView`] backend.
#[derive(Debug, Clone)]
pub struct OnlineBfs<'g, G: GraphView = DiGraph> {
    graph: &'g G,
}

impl<'g, G: GraphView> OnlineBfs<'g, G> {
    /// Wraps a graph; nothing is precomputed.
    pub fn new(graph: &'g G) -> Self {
        OnlineBfs { graph }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &G {
        self.graph
    }
}

impl<G: GraphView> Reachability for OnlineBfs<'_, G> {
    fn name(&self) -> &'static str {
        "online-bfs"
    }

    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        reachable_bfs(self.graph, s, t)
    }

    fn size_bytes(&self) -> usize {
        0 // no index structures beyond the graph itself
    }

    fn build_millis(&self) -> f64 {
        0.0
    }
}

impl<G: GraphView> KHopReachability for OnlineBfs<'_, G> {
    fn khop_reachable(&self, s: VertexId, t: VertexId, k: u32) -> bool {
        khop_reachable_bfs(self.graph, s, t, k)
    }
}

/// Index-free bidirectional BFS: expands the smaller frontier from both ends.
#[derive(Debug, Clone)]
pub struct BidirectionalBfs<'g, G: GraphView = DiGraph> {
    graph: &'g G,
}

impl<'g, G: GraphView> BidirectionalBfs<'g, G> {
    /// Wraps a graph; nothing is precomputed.
    pub fn new(graph: &'g G) -> Self {
        BidirectionalBfs { graph }
    }
}

impl<G: GraphView> Reachability for BidirectionalBfs<'_, G> {
    fn name(&self) -> &'static str {
        "bidirectional-bfs"
    }

    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        // Any simple path has length < n, so n hops suffice for reachability.
        khop_reachable_bidirectional(self.graph, s, t, self.graph.vertex_count() as u32)
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn build_millis(&self) -> f64 {
        0.0
    }
}

impl<G: GraphView> KHopReachability for BidirectionalBfs<'_, G> {
    fn khop_reachable(&self, s: VertexId, t: VertexId, k: u32) -> bool {
        khop_reachable_bidirectional(self.graph, s, t, k)
    }
}

/// The graph itself is the canonical index-free answerer: a bidirectional
/// k-hop search per query. This is the BFS fallback the serving engine wraps
/// when no index has been built.
impl KHopReachability for DiGraph {
    fn khop_reachable(&self, s: VertexId, t: VertexId, k: u32) -> bool {
        khop_reachable_bidirectional(self, s, t, k)
    }
}

/// The versioned backend answers k-hop queries the same way, over its live
/// edge set.
impl KHopReachability for VersionedAdjGraph {
    fn khop_reachable(&self, s: VertexId, t: VertexId, k: u32) -> bool {
        khop_reachable_bidirectional(self, s, t, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph {
        DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 3)])
    }

    #[test]
    fn online_bfs_answers_reachability() {
        let g = sample();
        let idx = OnlineBfs::new(&g);
        assert!(idx.reachable(VertexId(0), VertexId(4)));
        assert!(!idx.reachable(VertexId(4), VertexId(0)));
        assert_eq!(idx.name(), "online-bfs");
        assert_eq!(idx.size_bytes(), 0);
    }

    #[test]
    fn online_bfs_answers_khop() {
        let g = sample();
        let idx = OnlineBfs::new(&g);
        assert!(idx.khop_reachable(VertexId(0), VertexId(3), 2)); // 0 -> 5 -> 3
        assert!(!idx.khop_reachable(VertexId(0), VertexId(4), 2));
        assert!(idx.khop_reachable(VertexId(0), VertexId(4), 3));
    }

    #[test]
    fn bidirectional_agrees_with_forward() {
        let g = sample();
        let fwd = OnlineBfs::new(&g);
        let bi = BidirectionalBfs::new(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(fwd.reachable(s, t), bi.reachable(s, t), "({s},{t})");
                for k in 0..6 {
                    assert_eq!(
                        fwd.khop_reachable(s, t, k),
                        bi.khop_reachable(s, t, k),
                        "({s},{t},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_default_impl_is_populated() {
        let g = sample();
        let idx = OnlineBfs::new(&g);
        let stats = idx.stats();
        assert_eq!(stats.name, "online-bfs");
        assert_eq!(stats.size_bytes, 0);
    }
}
