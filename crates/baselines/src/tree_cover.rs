//! Spanning-tree interval cover with propagated non-tree labels.
//!
//! This is the stand-in for Path-Tree \[24\] and belongs to the classic
//! Agrawal–Borgida–Jagadish "tree cover" family: a DFS spanning forest of the
//! condensation DAG yields one interval per vertex (containing the post-order
//! ranks of its tree descendants); processing vertices in reverse topological
//! order then propagates successor intervals upwards so that the interval set
//! of `u` covers *every* vertex reachable from `u`. Queries test whether any
//! interval of `u` contains the post-order rank of `v`. Like all DAG-interval
//! schemes it answers classic reachability only (Section 3.2/3.3 of the
//! paper), which is why it appears here purely as a comparison point.

use crate::Reachability;
use kreach_graph::scc::Condensation;
use kreach_graph::traversal::{dfs_forest, topological_sort};
use kreach_graph::{GraphView, VertexId};
use std::time::Instant;

/// A closed interval of post-order ranks `[lo, hi]`.
type Interval = (u32, u32);

/// Tree-interval reachability cover over the condensation DAG.
#[derive(Debug, Clone)]
pub struct TreeCover {
    condensation: Condensation,
    /// Post-order rank of every DAG vertex in the spanning forest.
    post: Vec<u32>,
    /// Per DAG vertex: sorted, minimal list of intervals covering the
    /// post-order ranks of every reachable vertex (including itself).
    intervals: Vec<Vec<Interval>>,
    build_millis: f64,
}

impl TreeCover {
    /// Builds the tree cover of `g`.
    pub fn build<G: GraphView>(g: &G) -> Self {
        let started = Instant::now();
        let condensation = Condensation::new(g);
        let dag = &condensation.dag;
        let n = dag.vertex_count();

        // Spanning forest: deterministic DFS in vertex-id order.
        let forest = dfs_forest(dag, &[], |children| children.to_vec());
        let mut post = vec![0u32; n];
        for (rank, &v) in forest.postorder.iter().enumerate() {
            post[v.index()] = rank as u32;
        }
        // Tree interval of v: [min post-order in its DFS subtree, post(v)].
        // Because children finish before parents, a single pass in post-order
        // can accumulate subtree minima over *tree* children. The DFS forest
        // does not record tree edges explicitly, so recompute them: w is a
        // tree child of v iff v discovered w (discovery parent). We identify
        // tree children conservatively via discovery/finish nesting.
        let mut subtree_min = post.clone();
        for &v in &forest.postorder {
            for &w in dag.out_neighbors(v) {
                let nested = forest.discovery[v.index()] < forest.discovery[w.index()]
                    && forest.finish[w.index()] < forest.finish[v.index()];
                if nested {
                    subtree_min[v.index()] = subtree_min[v.index()].min(subtree_min[w.index()]);
                }
            }
        }

        // Propagate intervals in reverse topological order of the DAG.
        let topo = topological_sort(dag).expect("condensation is a DAG");
        let mut intervals: Vec<Vec<Interval>> = vec![Vec::new(); n];
        for &v in topo.iter().rev() {
            let mut collected: Vec<Interval> = vec![(subtree_min[v.index()], post[v.index()])];
            for &w in dag.out_neighbors(v) {
                collected.extend_from_slice(&intervals[w.index()]);
            }
            intervals[v.index()] = Self::minimize(collected);
        }

        TreeCover {
            condensation,
            post,
            intervals,
            build_millis: started.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Sorts intervals, merges overlapping/adjacent ones and drops contained
    /// ones, yielding a minimal sorted list.
    fn minimize(mut intervals: Vec<Interval>) -> Vec<Interval> {
        intervals.sort_unstable();
        let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
        for (lo, hi) in intervals {
            match out.last_mut() {
                Some(last) if lo <= last.1.saturating_add(1) => {
                    last.1 = last.1.max(hi);
                }
                _ => out.push((lo, hi)),
            }
        }
        out
    }

    /// Average number of intervals stored per DAG vertex.
    pub fn average_intervals(&self) -> f64 {
        let total: usize = self.intervals.iter().map(Vec::len).sum();
        total as f64 / self.intervals.len().max(1) as f64
    }

    fn contains(&self, u: usize, target_post: u32) -> bool {
        self.intervals[u]
            .binary_search_by(|&(lo, hi)| {
                if target_post < lo {
                    std::cmp::Ordering::Greater
                } else if target_post > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }
}

impl Reachability for TreeCover {
    fn name(&self) -> &'static str {
        "tree-cover"
    }

    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        let cs = self.condensation.map(s).index();
        let ct = self.condensation.map(t).index();
        if cs == ct {
            return true;
        }
        self.contains(cs, self.post[ct])
    }

    fn size_bytes(&self) -> usize {
        let interval_bytes: usize = self
            .intervals
            .iter()
            .map(|l| l.len() * std::mem::size_of::<Interval>())
            .sum();
        interval_bytes
            + self.post.len() * std::mem::size_of::<u32>()
            + self.condensation.scc.component.len() * std::mem::size_of::<u32>()
    }

    fn build_millis(&self) -> f64 {
        self.build_millis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreach_graph::generators::GeneratorSpec;
    use kreach_graph::traversal::reachable_bfs;
    use kreach_graph::DiGraph;

    fn check_against_bfs(g: &DiGraph, idx: &TreeCover) {
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(idx.reachable(s, t), reachable_bfs(g, s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn exact_on_small_dag_with_cross_edges() {
        let g = DiGraph::from_edges(8, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 2), (6, 7)]);
        let idx = TreeCover::build(&g);
        check_against_bfs(&g, &idx);
    }

    #[test]
    fn exact_on_cyclic_graph() {
        let g = DiGraph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 6),
            ],
        );
        let idx = TreeCover::build(&g);
        check_against_bfs(&g, &idx);
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..3u64 {
            let g = GeneratorSpec::ErdosRenyi { n: 140, m: 420 }.generate(seed + 20);
            let idx = TreeCover::build(&g);
            for s in g.vertices().step_by(7) {
                for t in g.vertices().step_by(5) {
                    assert_eq!(idx.reachable(s, t), reachable_bfs(&g, s, t), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn interval_lists_stay_small_on_tree_like_dags() {
        let g = GeneratorSpec::LayeredDag {
            n: 500,
            m: 700,
            layers: 12,
            back_edge_fraction: 0.0,
        }
        .generate(8);
        let idx = TreeCover::build(&g);
        assert!(
            idx.average_intervals() < 12.0,
            "tree-like DAGs should need few intervals per vertex, got {:.2}",
            idx.average_intervals()
        );
    }

    #[test]
    fn minimize_merges_and_drops_contained() {
        let merged = TreeCover::minimize(vec![(5, 9), (1, 3), (2, 4), (6, 7), (11, 12)]);
        assert_eq!(merged, vec![(1, 9), (11, 12)]);
        assert!(TreeCover::minimize(vec![]).is_empty());
    }

    #[test]
    fn reports_metadata() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let idx = TreeCover::build(&g);
        assert_eq!(idx.name(), "tree-cover");
        assert!(idx.size_bytes() > 0);
        assert!(idx.build_millis() >= 0.0);
    }
}
