//! Interval-compressed transitive closure on the condensation DAG.
//!
//! This is the stand-in for PWAH \[28\] (Section 3.6 of the paper): the full
//! transitive closure of the DAG is materialized, but each per-source
//! reachable set is stored compressed. PWAH uses partitioned word-aligned
//! hybrid bitmap compression; here the same role is played by sorted interval
//! lists over a topological renumbering of the DAG vertices, which — exactly
//! like PWAH — exploits the long runs of consecutive ids that appear when
//! reachable sets are enumerated in topological order. Queries are a single
//! `O(log r)` membership probe, `r` being the number of stored runs.

use crate::Reachability;
use kreach_graph::scc::Condensation;
use kreach_graph::traversal::topological_sort;
use kreach_graph::{FixedBitSet, GraphView, IntervalList, VertexId};
use std::time::Instant;

/// Compressed transitive closure over the condensation of the input graph.
#[derive(Debug, Clone)]
pub struct IntervalTransitiveClosure {
    condensation: Condensation,
    /// Topological rank of each DAG vertex (the id space of the intervals).
    topo_rank: Vec<u32>,
    /// For each DAG vertex, the interval-compressed set of topological ranks
    /// of every vertex reachable from it (excluding itself).
    closure: Vec<IntervalList>,
    build_millis: f64,
}

impl IntervalTransitiveClosure {
    /// Builds the compressed transitive closure of `g`.
    pub fn build<G: GraphView>(g: &G) -> Self {
        let started = Instant::now();
        let condensation = Condensation::new(g);
        let dag = &condensation.dag;
        let n = dag.vertex_count();

        let topo = topological_sort(dag).expect("condensation is a DAG");
        let mut topo_rank = vec![0u32; n];
        for (rank, &v) in topo.iter().enumerate() {
            topo_rank[v.index()] = rank as u32;
        }

        // Process vertices in reverse topological order so every successor's
        // closure is final before it is merged into its predecessors'.
        let mut closure: Vec<IntervalList> = vec![IntervalList::new(); n];
        let mut scratch = FixedBitSet::new(n);
        for &v in topo.iter().rev() {
            scratch.clear();
            for &w in dag.out_neighbors(v) {
                scratch.insert(topo_rank[w.index()] as usize);
                for id in closure[w.index()].iter() {
                    scratch.insert(id as usize);
                }
            }
            closure[v.index()] = IntervalList::from_bitset(&scratch);
        }

        IntervalTransitiveClosure {
            condensation,
            topo_rank,
            closure,
            build_millis: started.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Total number of stored runs across all reachable sets.
    pub fn total_runs(&self) -> usize {
        self.closure.iter().map(IntervalList::range_count).sum()
    }

    /// Total number of reachable pairs materialized (size of the closure
    /// before compression).
    pub fn total_reachable_pairs(&self) -> usize {
        self.closure.iter().map(IntervalList::cardinality).sum()
    }

    /// Compression ratio of the interval representation versus one `u32` per
    /// reachable pair (smaller is better).
    pub fn compression_ratio(&self) -> f64 {
        let pairs = self.total_reachable_pairs();
        if pairs == 0 {
            return 1.0;
        }
        let compressed: usize = self.closure.iter().map(IntervalList::size_bytes).sum();
        compressed as f64 / (pairs * std::mem::size_of::<u32>()) as f64
    }
}

impl Reachability for IntervalTransitiveClosure {
    fn name(&self) -> &'static str {
        "interval-tc"
    }

    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        let cs = self.condensation.map(s).index();
        let ct = self.condensation.map(t).index();
        if cs == ct {
            return true;
        }
        self.closure[cs].contains(self.topo_rank[ct])
    }

    fn size_bytes(&self) -> usize {
        self.closure
            .iter()
            .map(IntervalList::size_bytes)
            .sum::<usize>()
            + self.topo_rank.len() * std::mem::size_of::<u32>()
            + self.condensation.scc.component.len() * std::mem::size_of::<u32>()
    }

    fn build_millis(&self) -> f64 {
        self.build_millis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreach_graph::generators::GeneratorSpec;
    use kreach_graph::traversal::reachable_bfs;
    use kreach_graph::DiGraph;

    fn check_against_bfs(g: &DiGraph, idx: &IntervalTransitiveClosure) {
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(idx.reachable(s, t), reachable_bfs(g, s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn exact_on_small_dag() {
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (0, 3), (3, 2), (2, 4)]);
        let idx = IntervalTransitiveClosure::build(&g);
        check_against_bfs(&g, &idx);
    }

    #[test]
    fn exact_on_cyclic_graph() {
        let g = DiGraph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 4),
                (1, 6),
            ],
        );
        let idx = IntervalTransitiveClosure::build(&g);
        check_against_bfs(&g, &idx);
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..3u64 {
            let g = GeneratorSpec::ErdosRenyi { n: 150, m: 450 }.generate(seed);
            let idx = IntervalTransitiveClosure::build(&g);
            for s in g.vertices().step_by(7) {
                for t in g.vertices().step_by(5) {
                    assert_eq!(idx.reachable(s, t), reachable_bfs(&g, s, t), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn compression_beats_explicit_pairs_on_layered_dag() {
        let g = GeneratorSpec::LayeredDag {
            n: 600,
            m: 1800,
            layers: 15,
            back_edge_fraction: 0.0,
        }
        .generate(11);
        let idx = IntervalTransitiveClosure::build(&g);
        assert!(idx.total_reachable_pairs() > 0);
        assert!(
            idx.compression_ratio() < 0.9,
            "interval compression should beat one-u32-per-pair, got ratio {:.2}",
            idx.compression_ratio()
        );
    }

    #[test]
    fn reports_metadata() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let idx = IntervalTransitiveClosure::build(&g);
        assert_eq!(idx.name(), "interval-tc");
        assert!(idx.size_bytes() > 0);
        assert!(idx.total_runs() >= 1);
    }
}
