//! A 2-hop-cover *distance* labeling (pruned landmark labeling).
//!
//! Section 3.5 of the paper observes that any shortest-path/distance index
//! can answer k-hop reachability queries ("trivially"), but at a much higher
//! cost than a dedicated k-hop index; Table 7 quantifies this with the
//! "µ-dist" column, using the on-line exact shortest distance index of
//! Cheng & Yu \[13\]. That exact system is not available, so this module
//! implements the same *family* of index — a 2-hop distance cover — via
//! pruned landmark labeling: vertices are processed from highest to lowest
//! degree, each performing a forward and a backward BFS that is pruned
//! wherever the already-built labels can certify the current distance.
//! Queries take the minimum of `dist(s, w) + dist(w, t)` over common label
//! entries `w`, which is the canonical 2-hop distance query.

use crate::{KHopReachability, Reachability};
use kreach_graph::{GraphView, VertexId};
use std::collections::VecDeque;
use std::time::Instant;

/// One label entry: (landmark rank, hop distance).
type LabelEntry = (u32, u32);

/// A pruned-landmark-labeling distance index for directed graphs.
#[derive(Debug, Clone)]
pub struct DistanceIndex {
    /// `label_out[v]`: landmarks reachable *from* `v`, with distances,
    /// sorted by landmark rank.
    label_out: Vec<Vec<LabelEntry>>,
    /// `label_in[v]`: landmarks that can reach `v`, with distances,
    /// sorted by landmark rank.
    label_in: Vec<Vec<LabelEntry>>,
    build_millis: f64,
}

impl DistanceIndex {
    /// Builds the labeling. Landmarks are processed in decreasing order of
    /// total degree, which is the standard heuristic that keeps labels small
    /// on skewed-degree graphs.
    pub fn build<G: GraphView>(g: &G) -> Self {
        let started = Instant::now();
        let n = g.vertex_count();
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(g.total_degree(v)));

        let mut label_out: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        let mut label_in: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];

        // Reusable BFS state.
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        let mut touched: Vec<usize> = Vec::new();

        for (rank, &landmark) in order.iter().enumerate() {
            let rank = rank as u32;
            // Forward BFS from the landmark: populates label_in of reached
            // vertices (the landmark can reach them). Pruning only consults
            // labels of earlier landmarks, so the pushes can safely happen
            // after the traversal.
            let survivors = Self::pruned_bfs(
                g,
                landmark,
                true,
                &label_out,
                &label_in,
                &mut dist,
                &mut queue,
                &mut touched,
            );
            for (v, d) in survivors {
                label_in[v.index()].push((rank, d));
            }
            // Backward BFS: populates label_out of reached vertices (they can
            // reach the landmark).
            let survivors = Self::pruned_bfs(
                g,
                landmark,
                false,
                &label_out,
                &label_in,
                &mut dist,
                &mut queue,
                &mut touched,
            );
            for (v, d) in survivors {
                label_out[v.index()].push((rank, d));
            }
        }

        DistanceIndex {
            label_out,
            label_in,
            build_millis: started.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// BFS from `landmark` (forward if `forward`, else on reversed edges),
    /// pruned by the labels built so far; returns `(v, d)` for every vertex
    /// that survives pruning (including the landmark itself at d=0).
    #[allow(clippy::too_many_arguments)]
    fn pruned_bfs<G: GraphView>(
        g: &G,
        landmark: VertexId,
        forward: bool,
        label_out: &[Vec<LabelEntry>],
        label_in: &[Vec<LabelEntry>],
        dist: &mut [u32],
        queue: &mut VecDeque<VertexId>,
        touched: &mut Vec<usize>,
    ) -> Vec<(VertexId, u32)> {
        let mut survivors = Vec::new();
        queue.clear();
        touched.clear();
        dist[landmark.index()] = 0;
        touched.push(landmark.index());
        queue.push_back(landmark);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            // Prune if an earlier landmark already certifies this distance.
            let certified = if forward {
                Self::query_upper_bound(&label_out[landmark.index()], &label_in[u.index()])
            } else {
                Self::query_upper_bound(&label_out[u.index()], &label_in[landmark.index()])
            };
            if certified <= du && u != landmark {
                continue;
            }
            survivors.push((u, du));
            let neighbors = if forward {
                g.out_neighbors(u)
            } else {
                g.in_neighbors(u)
            };
            for &v in neighbors {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    touched.push(v.index());
                    queue.push_back(v);
                }
            }
        }
        for &i in touched.iter() {
            dist[i] = u32::MAX;
        }
        survivors
    }

    /// Minimum `d_out + d_in` over common landmarks of two sorted label lists.
    fn query_upper_bound(out: &[LabelEntry], inn: &[LabelEntry]) -> u32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut best = u32::MAX;
        while i < out.len() && j < inn.len() {
            match out[i].0.cmp(&inn[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(out[i].1.saturating_add(inn[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Exact shortest-path hop distance from `s` to `t`, or `None` if `t` is
    /// unreachable.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        let d = Self::query_upper_bound(&self.label_out[s.index()], &self.label_in[t.index()]);
        (d != u32::MAX).then_some(d)
    }

    /// Average number of label entries per vertex (a standard quality metric
    /// for 2-hop covers).
    pub fn average_label_size(&self) -> f64 {
        let total: usize = self
            .label_out
            .iter()
            .chain(self.label_in.iter())
            .map(Vec::len)
            .sum();
        total as f64 / (2.0 * self.label_out.len().max(1) as f64)
    }
}

impl Reachability for DistanceIndex {
    fn name(&self) -> &'static str {
        "distance-labeling"
    }

    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        self.distance(s, t).is_some()
    }

    fn size_bytes(&self) -> usize {
        let entries: usize = self
            .label_out
            .iter()
            .chain(self.label_in.iter())
            .map(Vec::len)
            .sum();
        entries * std::mem::size_of::<LabelEntry>()
            + (self.label_out.len() + self.label_in.len()) * std::mem::size_of::<Vec<LabelEntry>>()
    }

    fn build_millis(&self) -> f64 {
        self.build_millis
    }
}

impl KHopReachability for DistanceIndex {
    fn khop_reachable(&self, s: VertexId, t: VertexId, k: u32) -> bool {
        self.distance(s, t).is_some_and(|d| d <= k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreach_graph::generators::GeneratorSpec;
    use kreach_graph::traversal::shortest_distance;
    use kreach_graph::DiGraph;

    #[test]
    fn exact_distances_on_small_graph() {
        let g = DiGraph::from_edges(7, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (3, 5), (6, 0)]);
        let idx = DistanceIndex::build(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(idx.distance(s, t), shortest_distance(&g, s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn exact_distances_on_random_graphs() {
        for seed in 0..3u64 {
            let g = GeneratorSpec::PowerLaw {
                n: 150,
                m: 600,
                hubs: 3,
            }
            .generate(seed);
            let idx = DistanceIndex::build(&g);
            for s in g.vertices().step_by(11) {
                for t in g.vertices().step_by(7) {
                    assert_eq!(
                        idx.distance(s, t),
                        shortest_distance(&g, s, t),
                        "seed {seed} ({s},{t})"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_cyclic_graph() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let idx = DistanceIndex::build(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(idx.distance(s, t), shortest_distance(&g, s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn khop_queries_use_exact_distance() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let idx = DistanceIndex::build(&g);
        assert!(idx.khop_reachable(VertexId(0), VertexId(3), 3));
        assert!(!idx.khop_reachable(VertexId(0), VertexId(3), 2));
        assert!(idx.reachable(VertexId(0), VertexId(4)));
        assert!(!idx.reachable(VertexId(4), VertexId(0)));
    }

    #[test]
    fn pruning_keeps_labels_smaller_than_n() {
        let g = GeneratorSpec::PowerLaw {
            n: 400,
            m: 1600,
            hubs: 5,
        }
        .generate(9);
        let idx = DistanceIndex::build(&g);
        assert!(
            idx.average_label_size() < 100.0,
            "average label size {} should be far below n=400",
            idx.average_label_size()
        );
        assert!(idx.size_bytes() > 0);
        assert!(idx.build_millis() >= 0.0);
    }
}
