//! Criterion micro-benchmarks for index construction (the quantity Table 3
//! reports at full dataset scale). Runs on reduced-scale datasets so that
//! `cargo bench` finishes quickly; the `table3` binary covers full scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kreach_baselines::{DistanceIndex, Grail, IntervalTransitiveClosure, TreeCover};
use kreach_core::{BuildOptions, CoverStrategy, HkReachIndex, KReachIndex};
use kreach_datasets::spec_by_name;
use kreach_graph::DiGraph;

fn bench_graphs() -> Vec<(&'static str, DiGraph)> {
    ["AgroCyc", "ArXiv", "Xmark"]
        .into_iter()
        .map(|name| {
            let spec = spec_by_name(name).expect("known dataset").scaled(16);
            (name, spec.generate(7))
        })
        .collect()
}

fn construction(c: &mut Criterion) {
    let graphs = bench_graphs();
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for (name, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("n-reach", name), g, |b, g| {
            b.iter(|| KReachIndex::for_classic_reachability(g, BuildOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("6-reach", name), g, |b, g| {
            b.iter(|| KReachIndex::build(g, 6, BuildOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("(2,6)-reach", name), g, |b, g| {
            b.iter(|| HkReachIndex::build(g, 2, 6))
        });
        group.bench_with_input(BenchmarkId::new("6-reach-random-cover", name), g, |b, g| {
            b.iter(|| {
                KReachIndex::build(
                    g,
                    6,
                    BuildOptions {
                        cover_strategy: CoverStrategy::RandomEdge,
                        threads: 1,
                        ..BuildOptions::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("grail", name), g, |b, g| {
            b.iter(|| Grail::build(g))
        });
        group.bench_with_input(BenchmarkId::new("tree-cover", name), g, |b, g| {
            b.iter(|| TreeCover::build(g))
        });
        group.bench_with_input(BenchmarkId::new("interval-tc", name), g, |b, g| {
            b.iter(|| IntervalTransitiveClosure::build(g))
        });
        group.bench_with_input(BenchmarkId::new("distance-labeling", name), g, |b, g| {
            b.iter(|| DistanceIndex::build(g))
        });
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
