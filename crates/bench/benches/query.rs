//! Criterion micro-benchmarks for query latency (the quantities Tables 5 and
//! 7 report as workload totals): k-reach at several k, the baselines, and a
//! per-case breakdown of Algorithm 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kreach_baselines::{DistanceIndex, KHopReachability, OnlineBfs, Reachability};
use kreach_core::{BuildOptions, KReachIndex, QueryCase};
use kreach_datasets::{spec_by_name, QueryWorkload, WorkloadConfig};
use kreach_graph::{DiGraph, VertexId};

fn workload_pairs(g: &DiGraph, n: usize) -> Vec<(VertexId, VertexId)> {
    QueryWorkload::uniform(
        g,
        WorkloadConfig {
            queries: n,
            seed: 99,
        },
    )
    .pairs()
    .to_vec()
}

fn query_benchmarks(c: &mut Criterion) {
    let spec = spec_by_name("AgroCyc").expect("known dataset").scaled(16);
    let g = spec.generate(7);
    let pairs = workload_pairs(&g, 4096);

    let mut group = c.benchmark_group("query-workload");
    for k in [2u32, 6, g.vertex_count() as u32] {
        let index = KReachIndex::build(&g, k, BuildOptions::default());
        group.bench_with_input(BenchmarkId::new("k-reach", k), &index, |b, index| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter(|&&(s, t)| index.query(&g, s, t))
                    .count()
            })
        });
    }
    let bfs = OnlineBfs::new(&g);
    group.bench_function("khop-bfs-k6", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(s, t)| bfs.khop_reachable(s, t, 6))
                .count()
        })
    });
    let dist = DistanceIndex::build(&g);
    group.bench_function("distance-labeling-k6", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(s, t)| dist.khop_reachable(s, t, 6))
                .count()
        })
    });
    group.bench_function("distance-labeling-reach", |b| {
        b.iter(|| pairs.iter().filter(|&&(s, t)| dist.reachable(s, t)).count())
    });
    group.finish();

    // Per-case latency: Section 6.3.2 reports Case 4 costs ~12x Case 1.
    let index = KReachIndex::build(&g, 6, BuildOptions::default());
    let mut by_case: [Vec<(VertexId, VertexId)>; 4] = Default::default();
    for &(s, t) in &pairs {
        let case = index.classify(s, t);
        by_case[(case.number() - 1) as usize].push((s, t));
    }
    let mut group = c.benchmark_group("query-by-case");
    for (i, case_pairs) in by_case.iter().enumerate() {
        if case_pairs.is_empty() {
            continue;
        }
        let label = match i {
            0 => "case1-both-in-cover",
            1 => "case2-source-in-cover",
            2 => "case3-target-in-cover",
            _ => "case4-neither-in-cover",
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                case_pairs
                    .iter()
                    .filter(|&&(s, t)| index.query(&g, s, t))
                    .count()
            })
        });
    }
    group.finish();

    // Sanity check outside measurement: classification buckets are disjoint
    // and complete.
    let total: usize = by_case.iter().map(Vec::len).sum();
    assert_eq!(total, pairs.len());
    assert_eq!(QueryCase::BothInCover.number(), 1);
}

criterion_group!(benches, query_benchmarks);
criterion_main!(benches);
