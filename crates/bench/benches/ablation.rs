//! Criterion ablations for the design choices called out in DESIGN.md:
//! cover strategy (§4.3), the (h,k)-reach tradeoff (§5), and the
//! powers-of-two general-k family (§4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kreach_core::{BuildOptions, CoverStrategy, HkReachIndex, KReachIndex, MultiKReach};
use kreach_datasets::{spec_by_name, QueryWorkload, WorkloadConfig};

fn ablations(c: &mut Criterion) {
    let spec = spec_by_name("Kegg").expect("known dataset").scaled(16);
    let g = spec.generate(11);
    let pairs = QueryWorkload::uniform(
        &g,
        WorkloadConfig {
            queries: 2048,
            seed: 5,
        },
    )
    .pairs()
    .to_vec();

    // Cover strategy: build cost.
    let mut group = c.benchmark_group("cover-strategy-build");
    group.sample_size(10);
    for (label, strategy) in [
        ("random-edge", CoverStrategy::RandomEdge),
        ("degree-priority", CoverStrategy::DegreePriority),
    ] {
        group.bench_function(BenchmarkId::new("k6", label), |b| {
            b.iter(|| {
                KReachIndex::build(
                    &g,
                    6,
                    BuildOptions {
                        cover_strategy: strategy,
                        threads: 1,
                        ..BuildOptions::default()
                    },
                )
            })
        });
    }
    group.finish();

    // Cover strategy: query cost on the same workload.
    let mut group = c.benchmark_group("cover-strategy-query");
    for (label, strategy) in [
        ("random-edge", CoverStrategy::RandomEdge),
        ("degree-priority", CoverStrategy::DegreePriority),
    ] {
        let index = KReachIndex::build(
            &g,
            6,
            BuildOptions {
                cover_strategy: strategy,
                threads: 1,
                ..BuildOptions::default()
            },
        );
        group.bench_function(BenchmarkId::new("k6", label), |b| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter(|&&(s, t)| index.query(&g, s, t))
                    .count()
            })
        });
    }
    group.finish();

    // k-reach vs (h,k)-reach query cost (the Table 9 tradeoff).
    let mut group = c.benchmark_group("hk-tradeoff-query");
    let kreach = KReachIndex::build(&g, 6, BuildOptions::default());
    group.bench_function("k-reach-k6", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(s, t)| kreach.query(&g, s, t))
                .count()
        })
    });
    let hkreach = HkReachIndex::build(&g, 2, 6);
    group.bench_function("hk-reach-h2-k6", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(s, t)| hkreach.query(&g, s, t))
                .count()
        })
    });
    group.finish();

    // General-k family query cost.
    let mut group = c.benchmark_group("general-k");
    group.sample_size(10);
    let family = MultiKReach::build(&g, 8, BuildOptions::default());
    group.bench_function("pow2-family-k3", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(s, t)| family.query(&g, s, t, 3).optimistic())
                .count()
        })
    });
    let exact = KReachIndex::build(&g, 3, BuildOptions::default());
    group.bench_function("dedicated-k3", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(s, t)| exact.query(&g, s, t))
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
