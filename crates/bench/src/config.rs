//! Command-line configuration shared by every table binary.

use kreach_datasets::{all_specs, spec_by_name, DatasetSpec};

/// Configuration parsed from the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Divide every dataset's vertex/edge counts by this factor (default 1 =
    /// the sizes published in Table 2).
    pub scale: usize,
    /// Number of random queries per dataset (the paper uses 1,000,000).
    pub queries: usize,
    /// Which datasets to run (defaults to all 15).
    pub datasets: Vec<DatasetSpec>,
    /// Seed for graph generation and workload generation.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: 1,
            queries: 1_000_000,
            datasets: all_specs(),
            seed: 42,
        }
    }
}

impl BenchConfig {
    /// Parses `--scale`, `--queries`, `--datasets`, `--seed` from an argument
    /// iterator (excluding the program name). Unknown flags abort with a
    /// usage message.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut config = BenchConfig::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("flag {flag} requires a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    config.scale = value()?
                        .parse()
                        .map_err(|e| format!("invalid --scale: {e}"))?;
                    if config.scale == 0 {
                        return Err("--scale must be at least 1".to_string());
                    }
                }
                "--queries" => {
                    config.queries = value()?
                        .parse()
                        .map_err(|e| format!("invalid --queries: {e}"))?;
                }
                "--seed" => {
                    config.seed = value()?
                        .parse()
                        .map_err(|e| format!("invalid --seed: {e}"))?;
                }
                "--datasets" => {
                    let list = value()?;
                    let mut specs = Vec::new();
                    for name in list.split(',').filter(|s| !s.is_empty()) {
                        let spec = spec_by_name(name)
                            .ok_or_else(|| format!("unknown dataset {name:?}"))?;
                        specs.push(spec);
                    }
                    if specs.is_empty() {
                        return Err("--datasets list is empty".to_string());
                    }
                    config.datasets = specs;
                }
                "--help" | "-h" => {
                    return Err(Self::usage().to_string());
                }
                other => {
                    return Err(format!("unknown flag {other}\n{}", Self::usage()));
                }
            }
        }
        Ok(config)
    }

    /// Parses the process arguments, printing usage and exiting on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(config) => config,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// Usage string shown for `--help` and unknown flags.
    pub fn usage() -> &'static str {
        "usage: <table-binary> [--scale F] [--queries N] [--datasets A,B,C] [--seed S]\n\
         \n\
         --scale F      divide dataset sizes by F (default 1: paper-scale)\n\
         --queries N    random queries per dataset (default 1000000)\n\
         --datasets L   comma-separated dataset names (default: all 15)\n\
         --seed S       RNG seed for graphs and workloads (default 42)"
    }

    /// The datasets scaled according to `--scale`.
    pub fn scaled_datasets(&self) -> Vec<DatasetSpec> {
        self.datasets.iter().map(|d| d.scaled(self.scale)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    #[test]
    fn defaults_match_paper_protocol() {
        let c = BenchConfig::parse(std::iter::empty::<String>()).unwrap();
        assert_eq!(c.scale, 1);
        assert_eq!(c.queries, 1_000_000);
        assert_eq!(c.datasets.len(), 15);
    }

    #[test]
    fn parses_all_flags() {
        let c = BenchConfig::parse(args(
            "--scale 8 --queries 5000 --seed 7 --datasets arxiv,GO",
        ))
        .unwrap();
        assert_eq!(c.scale, 8);
        assert_eq!(c.queries, 5000);
        assert_eq!(c.seed, 7);
        assert_eq!(c.datasets.len(), 2);
        assert_eq!(c.datasets[0].name, "ArXiv");
        assert_eq!(c.scaled_datasets()[0].vertices, 6_000 / 8);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(BenchConfig::parse(args("--scale 0")).is_err());
        assert!(BenchConfig::parse(args("--scale")).is_err());
        assert!(BenchConfig::parse(args("--datasets unknown")).is_err());
        assert!(BenchConfig::parse(args("--bogus 1")).is_err());
        assert!(BenchConfig::parse(args("--queries notanumber")).is_err());
    }

    #[test]
    fn help_returns_usage() {
        let err = BenchConfig::parse(args("--help")).unwrap_err();
        assert!(err.contains("--scale"));
    }
}
