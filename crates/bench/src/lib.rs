//! # kreach-bench
//!
//! Benchmark harness reproducing the evaluation of the K-Reach paper
//! (Section 6). Every table of the paper has a dedicated binary:
//!
//! | Paper table | Binary | What it prints |
//! |---|---|---|
//! | Table 2 | `table2` | dataset statistics (paper vs generated stand-in) |
//! | Table 3 | `table3` | index construction time for n-reach and the baselines |
//! | Table 4 | `table4` | index sizes |
//! | Table 5 | `table5` | total time for the random reachability workload |
//! | Table 6 | `table6` | performance ranking derived from Tables 3–5 |
//! | Table 7 | `table7` | k-reach for k = 2, 4, 6, µ, n vs µ-BFS and µ-dist |
//! | Table 8 | `table8` | query-case distribution of the random workload |
//! | Table 9 | `table9` | vertex cover vs 2-hop cover, µ-reach vs (2,µ)-reach |
//! | §4.3 / §4.4 | `ablation_cover`, `ablation_general_k` | design-choice ablations |
//! | — (serving) | `serve_throughput` | batch-engine queries/sec per worker count |
//!
//! All binaries accept `--scale F` (divide dataset sizes by `F`),
//! `--queries N` (workload size), `--datasets a,b,c` (subset by name) and
//! `--seed S`, so the full paper-scale run and a quick smoke run use the same
//! code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod serve;
pub mod suite;
pub mod table;

pub use config::BenchConfig;
pub use serve::{serve_sweep, SweepPoint};
pub use suite::{IndexReport, NReachAdapter};
pub use table::Table;
