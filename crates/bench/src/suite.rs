//! Shared measurement machinery: build every index on a dataset, time the
//! random workload, and report the numbers Tables 3–6 need.

use kreach_baselines::{
    DistanceIndex, Grail, IntervalTransitiveClosure, OnlineBfs, Reachability, TreeCover,
};
use kreach_core::{BuildOptions, KReachIndex};
use kreach_datasets::QueryWorkload;
use kreach_graph::{DiGraph, VertexId};
use std::time::Instant;

/// Measurements for one index on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexReport {
    /// Index name ("n-reach", "grail", …).
    pub name: String,
    /// Construction time in milliseconds.
    pub build_millis: f64,
    /// Index size in bytes.
    pub size_bytes: usize,
    /// Total time to answer the workload, in milliseconds.
    pub query_millis: f64,
    /// Fraction of queries answered positively (sanity signal that all
    /// indexes answered the same workload consistently).
    pub positive_fraction: f64,
}

/// Adapter giving the k-reach index (with `k = n`) the same [`Reachability`]
/// interface as the baselines, for classic-reachability comparisons.
pub struct NReachAdapter<'g> {
    graph: &'g DiGraph,
    index: KReachIndex,
}

impl<'g> NReachAdapter<'g> {
    /// Builds an n-reach index over `graph`.
    pub fn build(graph: &'g DiGraph) -> Self {
        let index = KReachIndex::for_classic_reachability(graph, BuildOptions::default());
        NReachAdapter { graph, index }
    }

    /// Wraps an existing index (useful when the caller wants a specific k or
    /// cover strategy).
    pub fn from_index(graph: &'g DiGraph, index: KReachIndex) -> Self {
        NReachAdapter { graph, index }
    }

    /// The wrapped index.
    pub fn index(&self) -> &KReachIndex {
        &self.index
    }
}

impl Reachability for NReachAdapter<'_> {
    fn name(&self) -> &'static str {
        "n-reach"
    }

    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        self.index.query(self.graph, s, t)
    }

    fn size_bytes(&self) -> usize {
        self.index.size_bytes()
    }

    fn build_millis(&self) -> f64 {
        self.index.stats().build_millis
    }
}

/// Times the workload against one reachability index.
pub fn measure_reachability(index: &dyn Reachability, workload: &QueryWorkload) -> IndexReport {
    let started = Instant::now();
    let mut positives = 0usize;
    for &(s, t) in workload.pairs() {
        if index.reachable(s, t) {
            positives += 1;
        }
    }
    let query_millis = started.elapsed().as_secs_f64() * 1e3;
    IndexReport {
        name: index.name().to_string(),
        build_millis: index.build_millis(),
        size_bytes: index.size_bytes(),
        query_millis,
        positive_fraction: positives as f64 / workload.len().max(1) as f64,
    }
}

/// Builds every classic-reachability competitor of Section 6.2 on `g` and
/// measures the workload on each: n-reach, tree-cover (the Path-Tree family
/// stand-in), GRAIL, interval transitive closure (the PWAH stand-in),
/// 2-hop distance labeling, and the index-free online BFS.
///
/// The 3-hop index of the paper is not reproduced (see DESIGN.md); the
/// distance-labeling column plays the role of the 2-hop-cover family.
pub fn run_reachability_suite(g: &DiGraph, workload: &QueryWorkload) -> Vec<IndexReport> {
    let mut reports = Vec::new();

    let nreach = NReachAdapter::build(g);
    reports.push(measure_reachability(&nreach, workload));

    let tree = TreeCover::build(g);
    reports.push(measure_reachability(&tree, workload));

    let grail = Grail::build(g);
    reports.push(measure_reachability(&grail, workload));

    let tc = IntervalTransitiveClosure::build(g);
    reports.push(measure_reachability(&tc, workload));

    let dist = DistanceIndex::build(g);
    reports.push(measure_reachability(&dist, workload));

    let bfs = OnlineBfs::new(g);
    reports.push(measure_reachability(&bfs, workload));

    reports
}

/// Ranks reports by a metric (1 = best). Ties share the smaller rank.
pub fn rank_by<F>(reports: &[IndexReport], metric: F) -> Vec<(String, usize)>
where
    F: Fn(&IndexReport) -> f64,
{
    let mut order: Vec<usize> = (0..reports.len()).collect();
    order.sort_by(|&a, &b| {
        metric(&reports[a])
            .partial_cmp(&metric(&reports[b]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0usize; reports.len()];
    for (rank, &i) in order.iter().enumerate() {
        ranks[i] = rank + 1;
    }
    reports
        .iter()
        .zip(ranks)
        .map(|(r, rank)| (r.name.clone(), rank))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreach_datasets::WorkloadConfig;
    use kreach_graph::generators::GeneratorSpec;

    #[test]
    fn suite_reports_consistent_positive_fractions() {
        let g = GeneratorSpec::PowerLaw {
            n: 300,
            m: 1000,
            hubs: 4,
        }
        .generate(1);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 500,
                seed: 2,
            },
        );
        let reports = run_reachability_suite(&g, &workload);
        assert_eq!(reports.len(), 6);
        // All indexes answer the same queries, so the positive fraction must
        // be identical across the board — the strongest cross-validation the
        // harness performs on every run.
        let first = reports[0].positive_fraction;
        for r in &reports {
            assert!(
                (r.positive_fraction - first).abs() < 1e-12,
                "{} disagrees: {} vs {}",
                r.name,
                r.positive_fraction,
                first
            );
        }
    }

    #[test]
    fn nreach_adapter_wraps_index() {
        let g = GeneratorSpec::ErdosRenyi { n: 100, m: 250 }.generate(3);
        let adapter = NReachAdapter::build(&g);
        assert_eq!(adapter.name(), "n-reach");
        assert!(adapter.size_bytes() > 0);
        assert!(adapter.index().k() >= 100);
        let reachable = adapter.reachable(VertexId(0), VertexId(1));
        assert_eq!(
            reachable,
            kreach_graph::traversal::reachable_bfs(&g, VertexId(0), VertexId(1))
        );
    }

    #[test]
    fn ranking_orders_by_metric() {
        let reports = vec![
            IndexReport {
                name: "a".into(),
                build_millis: 5.0,
                size_bytes: 10,
                query_millis: 3.0,
                positive_fraction: 0.0,
            },
            IndexReport {
                name: "b".into(),
                build_millis: 1.0,
                size_bytes: 20,
                query_millis: 9.0,
                positive_fraction: 0.0,
            },
            IndexReport {
                name: "c".into(),
                build_millis: 3.0,
                size_bytes: 5,
                query_millis: 1.0,
                positive_fraction: 0.0,
            },
        ];
        let by_build = rank_by(&reports, |r| r.build_millis);
        assert_eq!(
            by_build,
            vec![("a".into(), 3), ("b".into(), 1), ("c".into(), 2)]
        );
        let by_query = rank_by(&reports, |r| r.query_millis);
        assert_eq!(by_query[2], ("c".into(), 1));
    }
}
