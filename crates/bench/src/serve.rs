//! Serving-throughput suite: worker-count sweeps through the batch engine.
//!
//! The paper evaluates per-query latency; this suite measures the serving
//! dimension the engine adds — batch throughput as worker count grows, and
//! how much of a skewed workload the result cache absorbs. The sweep itself
//! lives in [`kreach_engine::sweep`] and is shared with `kreach bench-serve`.

pub use kreach_engine::sweep::{serve_sweep, SweepPoint};

#[cfg(test)]
mod tests {
    use super::*;
    use kreach_graph::generators::GeneratorSpec;
    use std::sync::Arc;

    #[test]
    fn sweep_reports_one_point_per_worker_count() {
        let g = Arc::new(GeneratorSpec::ErdosRenyi { n: 80, m: 300 }.generate(17));
        let points = serve_sweep(&g, 3, 1500, 5, &[1, 2], 4096);
        assert_eq!(points.len(), 2);
        for point in &points {
            assert_eq!(point.stats.queries, 1500);
            assert!(point.stats.queries_per_sec > 0.0);
            assert_eq!(
                point.stats.cache_hits + point.stats.cache_misses,
                1500,
                "every query goes through the cache"
            );
        }
        assert_eq!(points[0].stats.workers, 1);
        assert_eq!(points[1].stats.workers, 2);
        // 1500 uniform queries over 80² pairs repeat often enough to hit.
        assert!(points[0].stats.cache_hits > 0);
    }
}
