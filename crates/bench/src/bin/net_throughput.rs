//! Network loadgen: client threads against a live `kreach serve` instance,
//! reporting end-to-end qps and p50/p99 latency.
//!
//! Two modes:
//!
//! * `--addr HOST:PORT` drives an already-running server (what the CI smoke
//!   job does against a `kreach serve --backend dynamic` process).
//! * Without `--addr`, it self-hosts: generates a dataset, builds the
//!   dynamic backend and an in-process server on an ephemeral port, then
//!   drives that — a self-contained network benchmark.
//!
//! Each client thread keeps one connection alive and issues `GET /reach`
//! requests (or `POST /batch` pipelines with `--batch N`), reconnecting
//! when the server sheds it with a 503. `--updates N` mixes in N mutation
//! posts per client (requires a `dynamic` backend server); a 503'd update
//! is retried with capped exponential backoff floored at the server's
//! `Retry-After`, so a temporarily degraded (read-only) server just slows
//! the loadgen down instead of losing writes. `--smoke` runs a small
//! deterministic load and **fails the process** on any response that is
//! neither 2xx nor a deliberate admission-control 503, on malformed answer
//! lines, on a batch answered out of order, or on an update that never
//! landed despite retries.
//!
//! ```text
//! net_throughput --addr 127.0.0.1:7199 --clients 8 --requests 2000
//! net_throughput --smoke --addr 127.0.0.1:7199 --updates 8
//! net_throughput --dataset AgroCyc --scale 40 --clients 4   # self-hosted
//! ```

use kreach_core::dynamic::DynamicOptions;
use kreach_datasets::{parse_answer_line, spec_by_name, PromScrape};
use kreach_engine::{BatchEngine, DynamicKReachBackend, EngineConfig, LatencyHistogram};
use kreach_server::client::BlockingClient;
use kreach_server::{start, ServerConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct LoadgenConfig {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    batch: usize,
    updates: usize,
    dataset: String,
    scale: usize,
    k: u32,
    seed: u64,
    smoke: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: None,
            clients: 4,
            requests: 1_000,
            batch: 0,
            updates: 0,
            dataset: "AgroCyc".to_string(),
            scale: 40,
            k: 3,
            seed: 42,
            smoke: false,
        }
    }
}

const USAGE: &str = "usage: net_throughput [--addr HOST:PORT] [--clients C] [--requests N]\n\
    \x20      [--batch B] [--updates U] [--dataset D] [--scale F] [--k K] [--seed S] [--smoke]\n\
    \n\
    --addr A      drive a running server (default: self-host an in-process one)\n\
    --clients C   concurrent client threads (default 4)\n\
    --requests N  requests per client (default 1000; 50 under --smoke)\n\
    --batch B     send POST /batch pipelines of B queries instead of single GETs\n\
    --updates U   mutation POSTs per client (needs a dynamic backend server)\n\
    --dataset D   dataset for self-hosting / vertex-range fallback (default AgroCyc)\n\
    --scale F     dataset scale divisor for self-hosting (default 40)\n\
    --k K         hop bound for generated queries (default 3)\n\
    --seed S      RNG seed (default 42)\n\
    --smoke       small deterministic run; exit 1 on any non-2xx/non-503 or\n\
                  malformed/misordered answer";

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<LoadgenConfig, String> {
    let mut config = LoadgenConfig::default();
    let mut requests_set = false;
    let mut iter = args.into_iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .ok_or_else(|| format!("flag {flag} requires a value"))
        };
        fn number<T: std::str::FromStr>(raw: String, flag: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().map_err(|e| format!("invalid {flag}: {e}"))
        }
        match flag.as_str() {
            "--addr" => config.addr = Some(value()?),
            "--clients" => config.clients = number(value()?, "--clients")?,
            "--requests" => {
                config.requests = number(value()?, "--requests")?;
                requests_set = true;
            }
            "--batch" => config.batch = number(value()?, "--batch")?,
            "--updates" => config.updates = number(value()?, "--updates")?,
            "--dataset" => config.dataset = value()?,
            "--scale" => config.scale = number(value()?, "--scale")?,
            "--k" => config.k = number(value()?, "--k")?,
            "--seed" => config.seed = number(value()?, "--seed")?,
            "--smoke" => config.smoke = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if config.smoke && !requests_set {
        config.requests = 50;
    }
    if config.clients == 0 || config.requests == 0 {
        return Err("--clients and --requests must be at least 1".to_string());
    }
    Ok(config)
}

/// Per-thread tallies, merged at the end.
#[derive(Default)]
struct ClientResult {
    ok: u64,
    shed: u64,
    errors: u64,
    queries: u64,
    update_retries: u64,
    updates_dropped: u64,
    latencies: LatencyHistogram,
    failures: Vec<String>,
}

fn main() {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    // Self-host when no address was given.
    let mut hosted: Option<ServerHandle> = None;
    let addr = match &config.addr {
        Some(addr) => addr.clone(),
        None => {
            let handle = self_host(&config);
            let addr = handle.addr().to_string();
            eprintln!("self-hosted dynamic backend at {addr}");
            hosted = Some(handle);
            addr
        }
    };

    // Learn the served graph's vertex range from /stats so generated
    // queries are in range; fall back to the dataset spec if unreadable.
    let vertex_count = probe_vertex_count(&addr).unwrap_or_else(|e| {
        eprintln!("warning: could not read /stats ({e}); using --dataset vertex count");
        spec_by_name(&config.dataset)
            .map(|spec| spec.scaled(config.scale).vertices)
            .unwrap_or(1000)
    });
    if vertex_count == 0 {
        eprintln!("server reports an empty graph; nothing to query");
        std::process::exit(2);
    }

    let started = Instant::now();
    let results: Vec<ClientResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|idx| {
                let config = config.clone();
                let addr = addr.clone();
                scope.spawn(move || drive_client(&config, &addr, idx, vertex_count))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut total = ClientResult::default();
    for result in results {
        total.ok += result.ok;
        total.shed += result.shed;
        total.errors += result.errors;
        total.queries += result.queries;
        total.update_retries += result.update_retries;
        total.updates_dropped += result.updates_dropped;
        total.latencies.merge(&result.latencies);
        total.failures.extend(result.failures);
    }

    let qps = if elapsed > 0.0 {
        total.queries as f64 / elapsed
    } else {
        0.0
    };
    println!(
        "net_throughput · {} clients × {} requests → {} queries \
         ({} ok, {} shed, {} errors) in {elapsed:.3}s",
        config.clients, config.requests, total.queries, total.ok, total.shed, total.errors,
    );
    if config.updates > 0 {
        println!(
            "  updates: {} retried after 503 (Retry-After honored), {} dropped",
            total.update_retries, total.updates_dropped
        );
    }
    println!(
        "  {qps:.0} q/s end-to-end · p50 {:.1}µs · p99 {:.1}µs · mean {:.1}µs",
        total.latencies.p50_micros(),
        total.latencies.p99_micros(),
        total.latencies.mean_nanos() / 1e3,
    );
    println!(
        "{{\"clients\":{},\"requests_per_client\":{},\"queries\":{},\"ok\":{},\"shed\":{},\
         \"errors\":{},\"update_retries\":{},\"updates_dropped\":{},\
         \"elapsed_secs\":{elapsed:.6},\"qps\":{qps:.1},\
         \"p50_micros\":{:.3},\"p99_micros\":{:.3}}}",
        config.clients,
        config.requests,
        total.queries,
        total.ok,
        total.shed,
        total.errors,
        total.update_retries,
        total.updates_dropped,
        total.latencies.p50_micros(),
        total.latencies.p99_micros(),
    );

    // Final /metrics scrape: validates the Prometheus exposition end-to-end
    // and yields the server's own view of the run — shed rate, slow-query
    // count, and the live Table-8 case mix.
    let final_scrape = scrape_metrics(&addr);
    match &final_scrape {
        Ok(scrape) => {
            let accepted = scrape
                .value("kreach_connections_accepted_total")
                .unwrap_or(0.0);
            let shed = scrape.value("kreach_connections_shed_total").unwrap_or(0.0);
            let shed_rate = if accepted > 0.0 {
                100.0 * shed / accepted
            } else {
                0.0
            };
            let slow = scrape.value("kreach_slow_queries_total").unwrap_or(0.0);
            let engine_queries = scrape.value("kreach_engine_queries_total").unwrap_or(0.0);
            println!(
                "  server scrape: {engine_queries:.0} engine queries · \
                 shed rate {shed_rate:.2}% ({shed:.0}/{accepted:.0}) · {slow:.0} slow queries"
            );
            let cases: Vec<String> = scrape
                .samples()
                .iter()
                .filter(|s| s.name == "kreach_engine_queries_by_case_total" && s.value > 0.0)
                .map(|s| format!("{}={:.0}", s.label("case").unwrap_or("?"), s.value))
                .collect();
            if !cases.is_empty() {
                println!("  case mix: {}", cases.join(" "));
            }
        }
        Err(e) => eprintln!("warning: final /metrics scrape failed: {e}"),
    }

    let hosted_run = hosted.is_some();
    if let Some(handle) = hosted {
        handle.shutdown();
        let report = handle.join();
        eprintln!(
            "self-hosted server drained clean={} ({} admitted, {} shed, {} slow)",
            report.clean, report.metrics.admitted, report.metrics.shed, report.slow_queries
        );
    }

    if config.smoke {
        let mut failed = false;
        match &final_scrape {
            Ok(scrape) => {
                let case_sum = scrape.sum_of("kreach_engine_queries_by_case_total");
                let engine_queries = scrape.value("kreach_engine_queries_total").unwrap_or(-1.0);
                if case_sum != engine_queries {
                    eprintln!(
                        "SMOKE FAIL: per-case counters sum to {case_sum}, \
                         kreach_engine_queries_total says {engine_queries}"
                    );
                    failed = true;
                }
                // Self-hosted: nothing else talked to the server, so the
                // engine's case breakdown must account for exactly the
                // queries this loadgen got 200s for.
                if hosted_run && case_sum != total.queries as f64 {
                    eprintln!(
                        "SMOKE FAIL: per-case counters sum to {case_sum}, \
                         loadgen had {} queries answered",
                        total.queries
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("SMOKE FAIL: final /metrics scrape: {e}");
                failed = true;
            }
        }
        if total.errors > 0 {
            eprintln!("SMOKE FAIL: {} non-2xx/non-503 responses", total.errors);
            failed = true;
        }
        if total.updates_dropped > 0 {
            eprintln!(
                "SMOKE FAIL: {} updates never landed despite Retry-After backoff",
                total.updates_dropped
            );
            failed = true;
        }
        if total.ok == 0 {
            eprintln!("SMOKE FAIL: no successful responses at all");
            failed = true;
        }
        for failure in total.failures.iter().take(10) {
            eprintln!("SMOKE FAIL: {failure}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("SMOKE OK");
    }
}

/// Generates a dataset graph and starts an in-process dynamic-backend
/// server on an ephemeral port.
fn self_host(config: &LoadgenConfig) -> ServerHandle {
    let spec = spec_by_name(&config.dataset).unwrap_or_else(|| {
        eprintln!("unknown dataset {:?}", config.dataset);
        std::process::exit(2);
    });
    let g = spec.scaled(config.scale).generate(config.seed);
    let engine = Arc::new(BatchEngine::new(
        Arc::new(DynamicKReachBackend::new(
            g,
            config.k,
            DynamicOptions::default(),
        )),
        EngineConfig::default(),
    ));
    start(
        engine,
        ServerConfig {
            max_inflight: (config.clients * 4).max(64),
            handlers: config.clients.max(4),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("failed to self-host: {e}");
        std::process::exit(2);
    })
}

/// Scrapes `GET /metrics` and parses the full exposition (every line).
fn scrape_metrics(addr: &str) -> Result<PromScrape, String> {
    let mut client = BlockingClient::connect(addr).map_err(|e| e.to_string())?;
    client
        .set_timeout(Duration::from_secs(10))
        .map_err(|e| e.to_string())?;
    let response = client.get("/metrics").map_err(|e| e.to_string())?;
    if !response.is_ok() {
        return Err(format!("/metrics returned {}", response.status));
    }
    PromScrape::parse(&response.body_text()).map_err(|e| e.to_string())
}

/// Reads `"vertex_count":N` out of `/stats`.
fn probe_vertex_count(addr: &str) -> Result<usize, String> {
    let mut client = BlockingClient::connect(addr).map_err(|e| e.to_string())?;
    client
        .set_timeout(Duration::from_secs(10))
        .map_err(|e| e.to_string())?;
    let response = client.get("/stats").map_err(|e| e.to_string())?;
    if !response.is_ok() {
        return Err(format!("/stats returned {}", response.status));
    }
    let body = response.body_text();
    body.split("\"vertex_count\":")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|digits| digits.parse().ok())
        })
        .ok_or_else(|| format!("no vertex_count in {body}"))
}

/// One client thread: keep-alive requests with reconnect-on-shed.
fn drive_client(
    config: &LoadgenConfig,
    addr: &str,
    idx: usize,
    vertex_count: usize,
) -> ClientResult {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (0x9E3779B9 * (idx as u64 + 1)));
    let n = vertex_count as u32;
    let mut result = ClientResult::default();
    let mut client: Option<BlockingClient> = None;

    let connect = |result: &mut ClientResult| -> Option<BlockingClient> {
        for _ in 0..50 {
            match BlockingClient::connect(addr) {
                Ok(client) => {
                    let _ = client.set_timeout(Duration::from_secs(30));
                    return Some(client);
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        result
            .failures
            .push(format!("client {idx}: could not connect to {addr}"));
        None
    };

    for _ in 0..config.requests {
        if client.is_none() {
            client = connect(&mut result);
            if client.is_none() {
                return result;
            }
        }
        let conn = client.as_mut().expect("connected");
        let queries_in_request = config.batch.max(1) as u64;
        // The queries this request carries, kept so --smoke can verify the
        // response echoes them back in order.
        let mut sent: Vec<(u32, u32)> = Vec::with_capacity(config.batch.max(1));
        let started = Instant::now();
        let response = if config.batch > 0 {
            let mut body = String::with_capacity(config.batch * 12);
            for _ in 0..config.batch {
                let s = rng.gen_range(0u32..n);
                let t = rng.gen_range(0u32..n);
                sent.push((s, t));
                body.push_str(&format!("{s} {t} {}\n", config.k));
            }
            conn.post("/batch", body.as_bytes())
        } else {
            let s = rng.gen_range(0u32..n);
            let t = rng.gen_range(0u32..n);
            sent.push((s, t));
            conn.get(&format!("/reach?s={s}&t={t}&k={}", config.k))
        };
        match response {
            Ok(response) => {
                result.latencies.record(started.elapsed().as_nanos() as u64);
                match response.status {
                    200 => {
                        result.ok += 1;
                        result.queries += queries_in_request;
                        if config.smoke {
                            check_answer_echo(
                                &sent,
                                config.k,
                                &response.body_text(),
                                idx,
                                &mut result,
                            );
                        }
                    }
                    503 => result.shed += 1,
                    other => {
                        result.errors += 1;
                        if result.failures.len() < 10 {
                            result.failures.push(format!(
                                "client {idx}: status {other}: {}",
                                response.body_text().trim_end()
                            ));
                        }
                    }
                }
                if response.close {
                    client = None;
                }
            }
            Err(_) => {
                // Connection died (shed race, server drain): reconnect and
                // keep going; the request is not counted.
                client = None;
            }
        }
    }

    // Updates are not fire-and-forget: a 503 (admission shed or degraded
    // mode) is retried with capped exponential backoff, floored at whatever
    // `Retry-After` the server sent, until the update lands or the attempt
    // budget runs out. `--smoke` treats a dropped update as a failure, so
    // this loop is also the end-to-end proof that a degrade → recover cycle
    // loses nothing the client was willing to wait for.
    const UPDATE_ATTEMPTS: u32 = 8;
    const BACKOFF_BASE: Duration = Duration::from_millis(50);
    const BACKOFF_CAP: Duration = Duration::from_secs(2);
    'updates: for _ in 0..config.updates {
        let u = rng.gen_range(0u32..n);
        let v = rng.gen_range(0u32..n);
        let op = if rng.gen_range(0u32..2) == 0 {
            "+"
        } else {
            "-"
        };
        let body = format!("{op} {u} {v}\n");
        let mut backoff = BACKOFF_BASE;
        for attempt in 0..UPDATE_ATTEMPTS {
            if client.is_none() {
                client = connect(&mut result);
                if client.is_none() {
                    return result;
                }
            }
            let conn = client.as_mut().expect("connected");
            match conn.post("/update", body.as_bytes()) {
                Ok(response) => {
                    if response.close {
                        client = None;
                    }
                    match response.status {
                        200 => {
                            result.ok += 1;
                            continue 'updates;
                        }
                        503 => {
                            result.shed += 1;
                            if attempt + 1 == UPDATE_ATTEMPTS {
                                break;
                            }
                            result.update_retries += 1;
                            // Honor the server's Retry-After as a floor, then
                            // back off exponentially with jitter so a fleet of
                            // clients doesn't re-stampede a recovering server.
                            let floor = Duration::from_secs(response.retry_after.unwrap_or(0));
                            let jitter = Duration::from_millis(
                                rng.gen_range(0..backoff.as_millis().max(4) as u64 / 4),
                            );
                            std::thread::sleep(floor.max(backoff + jitter).min(BACKOFF_CAP));
                            backoff = (backoff * 2).min(BACKOFF_CAP);
                        }
                        other => {
                            result.errors += 1;
                            if result.failures.len() < 10 {
                                result.failures.push(format!(
                                    "client {idx}: update status {other}: {}",
                                    response.body_text().trim_end()
                                ));
                            }
                            continue 'updates;
                        }
                    }
                }
                Err(_) => {
                    // Connection died; reconnect and burn one attempt.
                    client = None;
                }
            }
        }
        result.updates_dropped += 1;
        if config.smoke && result.failures.len() < 10 {
            result.failures.push(format!(
                "client {idx}: update {:?} still 503 after {UPDATE_ATTEMPTS} attempts",
                body.trim_end()
            ));
        }
    }
    result
}

/// Smoke-mode response validation: the body must contain exactly one
/// well-formed answer line per query sent, echoing `(s, t, k)` back **in
/// request order** — this is what catches a server that reorders, drops,
/// or duplicates pipelined batch answers.
fn check_answer_echo(
    sent: &[(u32, u32)],
    k: u32,
    body: &str,
    idx: usize,
    result: &mut ClientResult,
) {
    let mut push = |message: String| {
        if result.failures.len() < 10 {
            result.failures.push(message);
        }
    };
    let lines: Vec<&str> = body.lines().collect();
    if lines.len() != sent.len() {
        push(format!(
            "client {idx}: sent {} queries, got {} answer lines",
            sent.len(),
            lines.len()
        ));
        return;
    }
    for (i, (&(s, t), line)) in sent.iter().zip(lines.iter()).enumerate() {
        match parse_answer_line(line, i + 1) {
            Ok((rs, rt, rk, _)) => {
                if (rs.0, rt.0, rk) != (s, t, k) {
                    push(format!(
                        "client {idx}: answer #{i} out of order: sent ({s}, {t}, {k}), got {line:?}"
                    ));
                }
            }
            Err(_) => push(format!("client {idx}: malformed answer line {line:?}")),
        }
    }
}
