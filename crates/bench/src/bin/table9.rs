//! Table 9: sizes of the vertex cover and the 2-hop vertex cover, and the
//! total query time of µ-reach versus (2,k)-reach.
//!
//! Note on parameters: Definition 2 requires `h < k/2`, so for datasets whose
//! µ is small the (h,k)-reach index is built with `k = max(µ, 2h+1)`; the `k`
//! column reports the value actually used.

use kreach_bench::table::fmt_ms;
use kreach_bench::{BenchConfig, Table};
use kreach_core::hop_cover::HopVertexCover;
use kreach_core::{BuildOptions, CoverStrategy, HkReachIndex, KReachIndex, VertexCover};
use kreach_datasets::{QueryWorkload, WorkloadConfig};
use kreach_graph::metrics::{distance_profile, StatsConfig};
use std::time::Instant;

fn main() {
    let config = BenchConfig::from_env();
    let h = 2u32;
    let mut table = Table::new([
        "dataset",
        "|VC|",
        "|2-hop VC|",
        "mu-reach ms",
        "(2,k)-reach ms",
        "k",
        "reduction %",
    ]);
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: config.queries,
                seed: config.seed,
            },
        );
        let (_, mu) = distance_profile(&g, StatsConfig::default());
        let k = mu.max(2 * h + 1);

        let vc = VertexCover::compute(&g, CoverStrategy::RandomEdge);
        let hop_cover = HopVertexCover::compute(&g, h);
        let reduction = if vc.is_empty() {
            0.0
        } else {
            100.0 * (1.0 - hop_cover.len() as f64 / vc.len() as f64)
        };

        let kreach = KReachIndex::build_with_cover(
            &g,
            k,
            &vc,
            BuildOptions {
                cover_strategy: CoverStrategy::RandomEdge,
                threads: 1,
                ..BuildOptions::default()
            },
        );
        let hkreach = HkReachIndex::build_with_cover(&g, k, &hop_cover);

        let started = Instant::now();
        let mut pos_k = 0usize;
        for &(s, t) in workload.pairs() {
            if kreach.query(&g, s, t) {
                pos_k += 1;
            }
        }
        let kreach_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let mut pos_hk = 0usize;
        for &(s, t) in workload.pairs() {
            if hkreach.query(&g, s, t) {
                pos_hk += 1;
            }
        }
        let hkreach_ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            pos_k, pos_hk,
            "both indexes must answer the workload identically"
        );

        table.row([
            spec.name.to_string(),
            vc.len().to_string(),
            hop_cover.len().to_string(),
            fmt_ms(kreach_ms),
            fmt_ms(hkreach_ms),
            k.to_string(),
            format!("{reduction:.1}"),
        ]);
    }
    table.print(&format!(
        "Table 9: vertex cover vs 2-hop vertex cover and query-time tradeoff ({} queries, scale 1/{})",
        config.queries, config.scale
    ));
}
