//! Table 4: index size (MB) of n-reach and the baseline reachability indexes.

use kreach_bench::suite::run_reachability_suite;
use kreach_bench::table::fmt_mb;
use kreach_bench::{BenchConfig, Table};
use kreach_datasets::{QueryWorkload, WorkloadConfig};

fn main() {
    let config = BenchConfig::from_env();
    let mut table = Table::new([
        "dataset",
        "n-reach",
        "tree-cover",
        "grail",
        "interval-tc",
        "distance",
        "online-bfs",
    ]);
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 1,
                seed: config.seed,
            },
        );
        let reports = run_reachability_suite(&g, &workload);
        let mut row = vec![spec.name.to_string()];
        row.extend(reports.iter().map(|r| fmt_mb(r.size_bytes)));
        table.row(row);
    }
    table.print(&format!(
        "Table 4: index size in MB (scale 1/{}, seed {})",
        config.scale, config.seed
    ));
}
