//! Table 7: total query time of k-reach for k = 2, 4, 6, µ, n, compared with
//! online k-hop BFS (µ-BFS) and the distance labeling (µ-dist), both run at
//! k = µ.

use kreach_baselines::{DistanceIndex, KHopReachability, OnlineBfs};
use kreach_bench::table::fmt_ms;
use kreach_bench::{BenchConfig, Table};
use kreach_core::{BuildOptions, KReachIndex, VertexCover};
use kreach_datasets::{QueryWorkload, WorkloadConfig};
use kreach_graph::metrics::{distance_profile, StatsConfig};
use kreach_graph::DiGraph;
use std::time::Instant;

fn time_kreach(g: &DiGraph, index: &KReachIndex, workload: &QueryWorkload) -> f64 {
    let started = Instant::now();
    let mut positives = 0usize;
    for &(s, t) in workload.pairs() {
        if index.query(g, s, t) {
            positives += 1;
        }
    }
    std::hint::black_box(positives);
    started.elapsed().as_secs_f64() * 1e3
}

fn time_khop(index: &dyn KHopReachability, workload: &QueryWorkload, k: u32) -> f64 {
    let started = Instant::now();
    let mut positives = 0usize;
    for &(s, t) in workload.pairs() {
        if index.khop_reachable(s, t, k) {
            positives += 1;
        }
    }
    std::hint::black_box(positives);
    started.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let config = BenchConfig::from_env();
    let mut table = Table::new([
        "dataset", "2-reach", "4-reach", "6-reach", "mu-reach", "n-reach", "mu-BFS", "mu-dist",
        "mu",
    ]);
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: config.queries,
                seed: config.seed,
            },
        );
        let (_, mu) = distance_profile(&g, StatsConfig::default());
        let mu = mu.max(1);
        let n = g.vertex_count() as u32;

        // All k-reach variants share one vertex cover, as in Section 6.3.
        let cover = VertexCover::compute(&g, kreach_core::CoverStrategy::DegreePriority);
        let mut row = vec![spec.name.to_string()];
        for k in [2, 4, 6, mu, n] {
            let index = KReachIndex::build_with_cover(&g, k, &cover, BuildOptions::default());
            row.push(fmt_ms(time_kreach(&g, &index, &workload)));
        }

        let bfs = OnlineBfs::new(&g);
        row.push(fmt_ms(time_khop(&bfs, &workload, mu)));
        let dist = DistanceIndex::build(&g);
        row.push(fmt_ms(time_khop(&dist, &workload, mu)));
        row.push(mu.to_string());
        table.row(row);
    }
    table.print(&format!(
        "Table 7: total query time in ms for {} random k-hop queries (scale 1/{}, seed {})",
        config.queries, config.scale, config.seed
    ));
}
