//! Table 2: dataset statistics — published values versus the generated
//! synthetic stand-ins.

use kreach_bench::{BenchConfig, Table};
use kreach_graph::metrics::{graph_stats, StatsConfig};

fn main() {
    let config = BenchConfig::from_env();
    let mut table = Table::new([
        "dataset",
        "|V|",
        "|E|",
        "|V_dag|",
        "|E_dag|",
        "Degmax",
        "d",
        "mu",
        "paper |V|",
        "paper |E|",
        "paper Degmax",
        "paper d",
        "paper mu",
    ]);
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let stats = graph_stats(&g, StatsConfig::default());
        table.row([
            spec.name.to_string(),
            stats.vertices.to_string(),
            stats.edges.to_string(),
            stats.dag_vertices.to_string(),
            stats.dag_edges.to_string(),
            stats.max_degree.to_string(),
            stats.diameter.to_string(),
            stats.median_shortest_path.to_string(),
            spec.vertices.to_string(),
            spec.edges.to_string(),
            spec.max_degree.to_string(),
            spec.diameter.to_string(),
            spec.median_shortest_path.to_string(),
        ]);
    }
    table.print(&format!(
        "Table 2: dataset statistics (scale 1/{}, seed {})",
        config.scale, config.seed
    ));
}
