//! `metrics_lint` — CI validator for two `/metrics` scrapes taken under
//! load.
//!
//! Usage: `metrics_lint <scrape-before> <scrape-after>`
//!
//! Both files must be Prometheus text exposition captured from the same
//! server, the second strictly after the first. The lint asserts, in order:
//!
//! 1. **Exposition validity** — both scrapes parse line by line through
//!    [`kreach_datasets::PromScrape`] (which also enforces duplicate-series
//!    and histogram-bucket invariants).
//! 2. **Counter monotonicity** — every cumulative series
//!    (`*_total` / `*_bucket` / `*_sum` / `*_count`) present in the first
//!    scrape exists in the second with a value no smaller.
//! 3. **Case-sum invariant** — in each scrape on its own, the per-case
//!    engine counters sum exactly to `kreach_engine_queries_total` (the
//!    live Table-8 breakdown cannot leak or double-count).
//! 4. **Windowed gauges** — every rolling-window family exposes one series
//!    per window width (1s / 10s / 60s).
//! 5. **Exemplars** — the second scrape carries at least one OpenMetrics
//!    exemplar with a `trace_id` label on the request-latency histogram
//!    (CI runs the server with `--slow-query-us 1`, so one is guaranteed).
//!
//! Exits 0 when every check passes, 1 with a diagnostic on the first
//! failure.

use kreach_datasets::PromScrape;
use std::process::ExitCode;

/// Rolling-window gauge families `/metrics` must expose, each with one
/// series per window width.
const WINDOW_FAMILIES: [&str; 6] = [
    "kreach_rps_window",
    "kreach_qps_window",
    "kreach_request_p50_seconds_window",
    "kreach_request_p99_seconds_window",
    "kreach_cache_hit_rate_window",
    "kreach_shed_rate_window",
];

/// Window widths every family must carry as its `w` label values.
const WINDOW_WIDTHS: [&str; 3] = ["1s", "10s", "60s"];

fn is_cumulative(name: &str) -> bool {
    name.ends_with("_total")
        || name.ends_with("_bucket")
        || name.ends_with("_sum")
        || name.ends_with("_count")
}

fn run(before_path: &str, after_path: &str) -> Result<String, String> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read scrape {path}: {e}"))
    };
    let parse = |path: &str, text: &str| {
        PromScrape::parse(text).map_err(|e| format!("scrape {path} is not valid exposition: {e}"))
    };
    let before_text = read(before_path)?;
    let after_text = read(after_path)?;
    let before = parse(before_path, &before_text)?;
    let after = parse(after_path, &after_text)?;

    // 2. Cumulative series never move backwards and never vanish.
    let mut compared = 0usize;
    for sample in before.samples() {
        if !is_cumulative(&sample.name) {
            continue;
        }
        let now = after
            .samples()
            .iter()
            .find(|s| s.name == sample.name && s.labels == sample.labels)
            .ok_or_else(|| {
                format!(
                    "cumulative series {}{:?} vanished between scrapes",
                    sample.name, sample.labels
                )
            })?;
        if now.value < sample.value {
            return Err(format!(
                "counter {}{:?} went backwards: {} -> {}",
                sample.name, sample.labels, sample.value, now.value
            ));
        }
        compared += 1;
    }
    if compared < 20 {
        return Err(format!(
            "only {compared} cumulative series compared; the scrape looks truncated"
        ));
    }

    // 3. Per-case counters sum to the engine's query total, per scrape.
    for (path, scrape) in [(before_path, &before), (after_path, &after)] {
        let total = scrape
            .value("kreach_engine_queries_total")
            .ok_or_else(|| format!("{path}: kreach_engine_queries_total missing"))?;
        let by_case = scrape.sum_of("kreach_engine_queries_by_case_total");
        if by_case != total {
            return Err(format!(
                "{path}: per-case counters sum to {by_case}, \
                 kreach_engine_queries_total says {total}"
            ));
        }
    }

    // 4. Every window family carries every window width.
    for family in WINDOW_FAMILIES {
        if after.type_of(family) != Some("gauge") {
            return Err(format!(
                "{after_path}: window family {family} missing or not a gauge"
            ));
        }
        for width in WINDOW_WIDTHS {
            if after.labeled(family, "w", width).is_none() {
                return Err(format!(
                    "{after_path}: {family} has no w=\"{width}\" series"
                ));
            }
        }
    }

    // 5. At least one exemplar with a trace id on the latency histogram.
    let exemplars = after
        .samples_of("kreach_request_duration_seconds_bucket")
        .iter()
        .filter_map(|s| s.exemplar.as_ref())
        .filter(|e| e.label("trace_id").is_some())
        .count();
    if exemplars == 0 {
        return Err(format!(
            "{after_path}: no trace_id exemplar on kreach_request_duration_seconds"
        ));
    }

    Ok(format!(
        "metrics-lint ok: {} cumulative series monotone, case-sum invariant holds, \
         {} window families complete, {exemplars} exemplar(s) present",
        compared,
        WINDOW_FAMILIES.len(),
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [before, after] = args.as_slice() else {
        eprintln!("usage: metrics_lint <scrape-before> <scrape-after>");
        return ExitCode::FAILURE;
    };
    match run(before, after) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("metrics-lint: {message}");
            ExitCode::FAILURE
        }
    }
}
