//! Ablation for §4.3: random-edge versus degree-prioritized vertex cover.
//!
//! The paper argues that giving high-degree vertices priority (so every
//! "celebrity" lands in the cover) both shrinks the cover and removes the
//! worst-case Case-4 queries involving hubs. This binary quantifies that on
//! every dataset: cover size, index edges, index size and workload time for
//! the two strategies.

use kreach_bench::table::{fmt_mb, fmt_ms};
use kreach_bench::{BenchConfig, Table};
use kreach_core::{BuildOptions, CoverStrategy, KReachIndex};
use kreach_datasets::{QueryWorkload, WorkloadConfig};
use kreach_graph::metrics::{distance_profile, StatsConfig};
use kreach_graph::DiGraph;
use std::time::Instant;

fn measure(
    g: &DiGraph,
    k: u32,
    strategy: CoverStrategy,
    workload: &QueryWorkload,
) -> (usize, usize, usize, f64) {
    let index = KReachIndex::build(
        g,
        k,
        BuildOptions {
            cover_strategy: strategy,
            threads: 1,
            ..BuildOptions::default()
        },
    );
    let started = Instant::now();
    let mut positives = 0usize;
    for &(s, t) in workload.pairs() {
        if index.query(g, s, t) {
            positives += 1;
        }
    }
    std::hint::black_box(positives);
    (
        index.cover_size(),
        index.index_edge_count(),
        index.size_bytes(),
        started.elapsed().as_secs_f64() * 1e3,
    )
}

fn main() {
    let config = BenchConfig::from_env();
    let mut table = Table::new([
        "dataset",
        "rand |S|",
        "deg |S|",
        "rand |E_I|",
        "deg |E_I|",
        "rand MB",
        "deg MB",
        "rand ms",
        "deg ms",
    ]);
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: config.queries,
                seed: config.seed,
            },
        );
        let (_, mu) = distance_profile(&g, StatsConfig::default());
        let k = mu.max(2);
        let (rs, re, rb, rt) = measure(&g, k, CoverStrategy::RandomEdge, &workload);
        let (ds, de, db, dt) = measure(&g, k, CoverStrategy::DegreePriority, &workload);
        table.row([
            spec.name.to_string(),
            rs.to_string(),
            ds.to_string(),
            re.to_string(),
            de.to_string(),
            fmt_mb(rb),
            fmt_mb(db),
            fmt_ms(rt),
            fmt_ms(dt),
        ]);
    }
    table.print(&format!(
        "Ablation (4.3): cover strategy comparison at k = mu ({} queries, scale 1/{})",
        config.queries, config.scale
    ));
}
