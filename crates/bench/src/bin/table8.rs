//! Table 8: percentage of random queries falling into each of the four cases
//! of Algorithm 2.

use kreach_bench::table::fmt_pct;
use kreach_bench::{BenchConfig, Table};
use kreach_core::{BuildOptions, KReachIndex};
use kreach_datasets::{QueryWorkload, WorkloadConfig};
use kreach_graph::metrics::{distance_profile, StatsConfig};

fn main() {
    let config = BenchConfig::from_env();
    let mut table = Table::new([
        "dataset", "case 1 %", "case 2 %", "case 3 %", "case 4 %", "|cover|",
    ]);
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: config.queries,
                seed: config.seed,
            },
        );
        let (_, mu) = distance_profile(&g, StatsConfig::default());
        let index = KReachIndex::build(&g, mu.max(2), BuildOptions::default());
        let counts = workload.case_distribution(|s, t| index.classify(s, t).number());
        let total = workload.len().max(1) as f64;
        table.row([
            spec.name.to_string(),
            fmt_pct(counts[0] as f64 / total),
            fmt_pct(counts[1] as f64 / total),
            fmt_pct(counts[2] as f64 / total),
            fmt_pct(counts[3] as f64 / total),
            index.cover_size().to_string(),
        ]);
    }
    table.print(&format!(
        "Table 8: query-case distribution over {} random queries (scale 1/{}, seed {})",
        config.queries, config.scale, config.seed
    ));
}
