//! Update-throughput suite: incremental index maintenance under churn.
//!
//! For each dataset this builds the dynamic k-reach backend (versioned
//! adjacency storage: `O(degree)` mutations, no `O(m)` snapshot per
//! update), then measures (a) pure mutation throughput (updates/sec and
//! µs/update through the engine, including epoch-based cache invalidation)
//! and (b) query latency *under churn* — batches interleaved with mutation
//! bursts, whose overlapping row patches coalesce — against the quiescent
//! baseline. Run it at several `--scale` values to see that per-update cost
//! does not grow with the total edge count:
//!
//! ```text
//! update_throughput --datasets AgroCyc,Xmark --scale 40 --queries 20000
//! ```

use kreach_bench::{BenchConfig, Table};
use kreach_core::dynamic::DynamicOptions;
use kreach_engine::{
    BatchEngine, DynamicKReachBackend, EngineConfig, Query, QueryBatch, Reachability,
};
use kreach_graph::dynamic::EdgeUpdate;
use kreach_graph::{DiGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// A churn stream: alternating removals of existing edges and fresh inserts,
/// biased so the edge count stays roughly stable.
fn churn_stream(g: &DiGraph, count: usize, rng: &mut StdRng) -> Vec<EdgeUpdate> {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let n = g.vertex_count() as u32;
    (0..count)
        .map(|i| {
            if i % 2 == 0 && !edges.is_empty() {
                let (u, v) = edges[rng.gen_range(0usize..edges.len())];
                EdgeUpdate::Remove(u, v)
            } else {
                EdgeUpdate::Insert(
                    VertexId(rng.gen_range(0u32..n)),
                    VertexId(rng.gen_range(0u32..n)),
                )
            }
        })
        .collect()
}

fn main() {
    let config = BenchConfig::from_env();
    let k = 3;
    let updates = 2_000usize;
    let churn_batch = 16usize;
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0FFEE);
        let n = g.vertex_count();
        let backend = Arc::new(DynamicKReachBackend::new(
            g.clone(),
            k,
            DynamicOptions::default(),
        ));
        let engine = BatchEngine::new(
            Arc::clone(&backend) as Arc<dyn Reachability>,
            EngineConfig::default(),
        );

        // One shared query workload, uniform random pairs.
        let pairs: Vec<Query> = (0..config.queries)
            .map(|_| Query {
                s: VertexId(rng.gen_range(0u32..n as u32)),
                t: VertexId(rng.gen_range(0u32..n as u32)),
                k,
            })
            .collect();
        let batch = QueryBatch::new(pairs);

        // Phase 1: quiescent query baseline.
        let baseline = engine.run(&batch).expect("workload in range").stats;

        // One churn stream shared by phases 1b and 2, so the bare-storage
        // and full-maintenance timings decompose the exact same update
        // sequence.
        let stream = churn_stream(&g, updates, &mut rng);

        // Phase 1b: raw storage mutation cost — the stream applied to a
        // bare versioned graph, isolating the O(degree) copy-on-write
        // segment edits from index maintenance. This is the number that
        // must stay flat as |E| grows (the frozen-CSR path paid an O(m)
        // snapshot merge here).
        let mut bare = kreach_graph::VersionedAdjGraph::from_csr(&g);
        let started = Instant::now();
        for update in &stream {
            bare.apply(*update);
        }
        let storage_secs = started.elapsed().as_secs_f64();

        // Phase 2: pure update throughput (one mutation per apply call, the
        // serving pattern; epoch bumps included).
        let started = Instant::now();
        for update in &stream {
            engine.apply_updates(&[*update]).expect("dynamic backend");
        }
        let update_secs = started.elapsed().as_secs_f64();
        let maintenance = backend.with_state(|s| s.stats());

        // Phase 3: query latency under churn — mutation bursts interleaved
        // with the same workload, split into slices.
        let churn = churn_stream(&g, updates, &mut rng);
        let queries = batch.queries();
        let slice = (queries.len() / (updates / churn_batch).max(1)).max(1);
        let started = Instant::now();
        let mut worst_p99 = 0.0f64;
        let mut answered = 0usize;
        let mut next_update = 0usize;
        let mut offset = 0usize;
        while offset < queries.len() {
            let end = (offset + slice).min(queries.len());
            let sub = QueryBatch::new(queries[offset..end].to_vec());
            let outcome = engine.run(&sub).expect("workload in range");
            answered += outcome.stats.queries;
            worst_p99 = worst_p99.max(outcome.stats.p99_micros);
            let burst_end = (next_update + churn_batch).min(churn.len());
            if next_update < burst_end {
                engine
                    .apply_updates(&churn[next_update..burst_end])
                    .expect("dynamic backend");
                next_update = burst_end;
            }
            offset = end;
        }
        let churn_secs = started.elapsed().as_secs_f64();
        // Burst-phase deltas: coalescing only shows up when a batch carries
        // several updates, so report it from the churn phase.
        let churn_maintenance = backend.with_state(|s| s.stats()).since(maintenance);

        let mut table = Table::new(["metric", "value"]);
        table.row([
            "quiescent queries/s".to_string(),
            format!("{:.0}", baseline.queries_per_sec),
        ]);
        table.row([
            "quiescent p99 µs".to_string(),
            format!("{:.1}", baseline.p99_micros),
        ]);
        table.row([
            "storage µs/update (bare graph)".to_string(),
            format!("{:.3}", storage_secs * 1e6 / updates.max(1) as f64),
        ]);
        table.row([
            "updates/s (single)".to_string(),
            format!("{:.0}", updates as f64 / update_secs.max(1e-9)),
        ]);
        table.row([
            "µs/update (single, incl. row patching)".to_string(),
            format!("{:.1}", update_secs * 1e6 / updates.max(1) as f64),
        ]);
        table.row([
            "rows patched/update".to_string(),
            format!(
                "{:.1}",
                maintenance.rows_patched as f64 / maintenance.applied().max(1) as f64
            ),
        ]);
        table.row([
            "rows coalesced (churn bursts)".to_string(),
            churn_maintenance.rows_coalesced.to_string(),
        ]);
        table.row([
            "cover additions".to_string(),
            maintenance.cover_additions.to_string(),
        ]);
        table.row([
            "full rebuilds".to_string(),
            maintenance.full_rebuilds.to_string(),
        ]);
        table.row([
            "churn queries/s".to_string(),
            format!("{:.0}", answered as f64 / churn_secs.max(1e-9)),
        ]);
        table.row([
            "churn worst-slice p99 µs".to_string(),
            format!("{worst_p99:.1}"),
        ]);
        table.print(&format!(
            "{} (|V| = {}, |E| = {}, k = {k}, {} queries, {} updates, bursts of {churn_batch})",
            spec.name,
            n,
            g.edge_count(),
            config.queries,
            updates
        ));
    }
}
