//! Table 6: overall performance ranking (1 = best) on indexing time, index
//! size and query time, averaged over all datasets.

use kreach_bench::suite::{rank_by, run_reachability_suite};
use kreach_bench::{BenchConfig, Table};
use kreach_datasets::{QueryWorkload, WorkloadConfig};
use std::collections::BTreeMap;

fn main() {
    let config = BenchConfig::from_env();
    // Accumulate per-index rank sums across datasets for the three metrics.
    let mut build_ranks: BTreeMap<String, usize> = BTreeMap::new();
    let mut size_ranks: BTreeMap<String, usize> = BTreeMap::new();
    let mut query_ranks: BTreeMap<String, usize> = BTreeMap::new();
    let mut dataset_count = 0usize;

    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: config.queries,
                seed: config.seed,
            },
        );
        let reports = run_reachability_suite(&g, &workload);
        for (name, rank) in rank_by(&reports, |r| r.build_millis) {
            *build_ranks.entry(name).or_default() += rank;
        }
        for (name, rank) in rank_by(&reports, |r| r.size_bytes as f64) {
            *size_ranks.entry(name).or_default() += rank;
        }
        for (name, rank) in rank_by(&reports, |r| r.query_millis) {
            *query_ranks.entry(name).or_default() += rank;
        }
        dataset_count += 1;
    }

    let mut table = Table::new([
        "index",
        "indexing-time rank",
        "index-size rank",
        "query-time rank",
    ]);
    let names: Vec<String> = build_ranks.keys().cloned().collect();
    // Convert rank sums to average ranks, then to an ordinal 1..n per metric
    // exactly as the paper presents Table 6.
    let ordinal = |ranks: &BTreeMap<String, usize>| -> BTreeMap<String, usize> {
        let mut entries: Vec<(&String, &usize)> = ranks.iter().collect();
        entries.sort_by_key(|&(_, sum)| *sum);
        entries
            .into_iter()
            .enumerate()
            .map(|(i, (name, _))| (name.clone(), i + 1))
            .collect()
    };
    let build_ord = ordinal(&build_ranks);
    let size_ord = ordinal(&size_ranks);
    let query_ord = ordinal(&query_ranks);
    for name in names {
        table.row([
            name.clone(),
            build_ord[&name].to_string(),
            size_ord[&name].to_string(),
            query_ord[&name].to_string(),
        ]);
    }
    table.print(&format!(
        "Table 6: performance ranking over {dataset_count} datasets (1 = best; scale 1/{}, {} queries)",
        config.scale, config.queries
    ));
}
