//! Serving-throughput suite: batch-engine queries/sec per worker count.
//!
//! For each dataset this sweeps the engine over worker counts {1, 2, 4, one
//! per CPU} on one fixed random workload and reports throughput, speedup
//! over the single-worker run, cache hit rate, and tail latency:
//!
//! ```text
//! serve_throughput --datasets AgroCyc,ArXiv --scale 8 --queries 100000
//! ```

use kreach_bench::serve::serve_sweep;
use kreach_bench::{BenchConfig, Table};
use std::sync::Arc;

fn main() {
    let config = BenchConfig::from_env();
    let k = 4;
    let workers = [1usize, 2, 4, 0];
    for spec in config.scaled_datasets() {
        let g = Arc::new(spec.generate(config.seed));
        let points = serve_sweep(&g, k, config.queries, config.seed, &workers, 1 << 16);
        let base_qps = points[0].stats.queries_per_sec;
        let mut table = Table::new([
            "workers",
            "queries/s",
            "speedup",
            "cache-hit %",
            "p50 µs",
            "p99 µs",
        ]);
        for point in &points {
            let stats = &point.stats;
            table.row([
                if point.requested_workers == 0 {
                    format!("{} (auto)", stats.workers)
                } else {
                    stats.workers.to_string()
                },
                format!("{:.0}", stats.queries_per_sec),
                if base_qps > 0.0 {
                    format!("{:.2}x", stats.queries_per_sec / base_qps)
                } else {
                    "-".to_string()
                },
                format!("{:.1}", 100.0 * stats.cache_hit_rate()),
                format!("{:.1}", stats.p50_micros),
                format!("{:.1}", stats.p99_micros),
            ]);
        }
        table.print(&format!(
            "{} (|V| = {}, |E| = {}, k = {k}, {} queries)",
            spec.name,
            g.vertex_count(),
            g.edge_count(),
            config.queries
        ));
    }
}
