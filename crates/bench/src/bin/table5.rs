//! Table 5: total time (ms) to answer the random reachability workload with
//! n-reach and every baseline index.

use kreach_bench::suite::run_reachability_suite;
use kreach_bench::table::fmt_ms;
use kreach_bench::{BenchConfig, Table};
use kreach_datasets::{QueryWorkload, WorkloadConfig};

fn main() {
    let config = BenchConfig::from_env();
    let mut table = Table::new([
        "dataset",
        "n-reach",
        "tree-cover",
        "grail",
        "interval-tc",
        "distance",
        "online-bfs",
        "positive %",
    ]);
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: config.queries,
                seed: config.seed,
            },
        );
        let reports = run_reachability_suite(&g, &workload);
        let mut row = vec![spec.name.to_string()];
        row.extend(reports.iter().map(|r| fmt_ms(r.query_millis)));
        row.push(format!("{:.2}", reports[0].positive_fraction * 100.0));
        table.row(row);
    }
    table.print(&format!(
        "Table 5: total query time in ms for {} random reachability queries (scale 1/{}, seed {})",
        config.queries, config.scale, config.seed
    ));
}
