//! Ablation for §4.3's compact representation: the CSR + 2-bit-weight index
//! versus the interval-compressed index, in size and query time.

use kreach_bench::table::{fmt_mb, fmt_ms};
use kreach_bench::{BenchConfig, Table};
use kreach_core::{BuildOptions, CompactKReachIndex, KReachIndex};
use kreach_datasets::{QueryWorkload, WorkloadConfig};
use kreach_graph::metrics::{distance_profile, StatsConfig};
use std::time::Instant;

fn main() {
    let config = BenchConfig::from_env();
    let mut table = Table::new([
        "dataset",
        "csr MB",
        "interval MB",
        "ratio",
        "runs",
        "index edges",
        "csr ms",
        "interval ms",
    ]);
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: config.queries,
                seed: config.seed,
            },
        );
        let (_, mu) = distance_profile(&g, StatsConfig::default());
        let k = mu.max(2);

        let plain = KReachIndex::build(&g, k, BuildOptions::default());
        let compact = CompactKReachIndex::from_index(&plain);

        let started = Instant::now();
        let pos_plain = workload
            .pairs()
            .iter()
            .filter(|&&(s, t)| plain.query(&g, s, t))
            .count();
        let plain_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let pos_compact = workload
            .pairs()
            .iter()
            .filter(|&&(s, t)| compact.query(&g, s, t))
            .count();
        let compact_ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            pos_plain, pos_compact,
            "representations must agree on every query"
        );

        table.row([
            spec.name.to_string(),
            fmt_mb(plain.size_bytes()),
            fmt_mb(compact.size_bytes()),
            format!("{:.2}", compact.compression_ratio(&plain)),
            compact.total_runs().to_string(),
            plain.index_edge_count().to_string(),
            fmt_ms(plain_ms),
            fmt_ms(compact_ms),
        ]);
    }
    table.print(&format!(
        "Ablation (4.3): CSR vs interval-compressed index at k = mu ({} queries, scale 1/{})",
        config.queries, config.scale
    ));
}
