//! Ablation for §4.4: supporting general k with a powers-of-two index family
//! versus one exact index per k.
//!
//! Reports, per dataset: the space of a single µ-reach index, of the
//! powers-of-two family, and of the exact per-k family, plus the fraction of
//! workload queries the approximate family answers exactly for a
//! non-power-of-two k.

use kreach_bench::table::fmt_mb;
use kreach_bench::{BenchConfig, Table};
use kreach_core::{BuildOptions, ExactMultiKReach, KReachIndex, MultiKReach};
use kreach_datasets::{QueryWorkload, WorkloadConfig};
use kreach_graph::metrics::{distance_profile, StatsConfig};

fn main() {
    let config = BenchConfig::from_env();
    let mut table = Table::new([
        "dataset",
        "d",
        "single MB",
        "pow2 MB",
        "exact MB",
        "pow2 indexes",
        "exact@k=3 %",
    ]);
    for spec in config.scaled_datasets() {
        let g = spec.generate(config.seed);
        let workload = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: config.queries.min(20_000),
                seed: config.seed,
            },
        );
        let (d, mu) = distance_profile(&g, StatsConfig::default());
        let d = d.max(2);

        let single = KReachIndex::build(&g, mu.max(2), BuildOptions::default());
        let pow2 = MultiKReach::build(&g, d, BuildOptions::default());
        let exact = ExactMultiKReach::build(&g, d.min(8), BuildOptions::default());

        // How often is the approximate family exact at k = 3 (a value between
        // the 2-reach and 4-reach members)?
        let exact_fraction = workload.fraction_where(|s, t| pow2.query(&g, s, t, 3).is_exact());

        table.row([
            spec.name.to_string(),
            d.to_string(),
            fmt_mb(single.size_bytes()),
            fmt_mb(pow2.size_bytes()),
            fmt_mb(exact.size_bytes()),
            pow2.hop_bounds().len().to_string(),
            format!("{:.1}", exact_fraction * 100.0),
        ]);
    }
    table.print(&format!(
        "Ablation (4.4): general-k support, powers-of-two vs exact family (scale 1/{})",
        config.scale
    ));
}
