//! Query-path throughput suite: the Algorithm-2 fast path vs. the naive
//! nested-loop formulation, per query case, plus engine batch throughput.
//!
//! Two workloads:
//!
//! * **hub-fanout** — a synthetic celebrity graph built for the worst Case 4
//!   of §4.2.2: every query endpoint is an *uncovered* vertex with a large
//!   covered neighbourhood (fan `f`), so the naive path pays
//!   `O(f² · log outDeg_I)` binary-search probes per query while the hybrid
//!   path answers with bitset-ANDs over distance-bucketed cover rows.
//!   Negative cross-partition pairs are included deliberately: they force
//!   full scans on both paths (no early exit), which is where the asymptotic
//!   gap actually shows.
//! * **uniform** — a generated power-law graph with uniform random pairs,
//!   reporting the query-case (cover-hit) distribution of Table 8 and
//!   guarding against regressions on the common Cases 1–3.
//!
//! Emits a human table per workload and a machine-readable
//! `BENCH_query.json` (override with `--output`) with before/after
//! microseconds per case, speedups, the case distribution, and engine
//! queries/sec — the perf-trajectory artifact CI uploads per PR.
//!
//! `--smoke` shrinks everything for CI; the JSON shape is identical.

use kreach_bench::Table;
use kreach_core::{BuildOptions, KReachIndex, QueryCase, VertexCover};
use kreach_engine::{
    BatchEngine, EngineConfig, EngineStats, KReachBackend, Query, QueryBatch, ACCEL_RETUNE_INTERVAL,
};
use kreach_graph::generators::GeneratorSpec;
use kreach_graph::{DiGraph, VertexId};
use kreach_obs::{FlightRecorder, Recorder, WindowStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    smoke: bool,
    seed: u64,
    queries: usize,
    output: String,
    /// Markdown table of calibrated targets; when set, the run exits
    /// nonzero if the hub Case-4 fast path regresses past 2x its target.
    check_targets: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        smoke: false,
        seed: 42,
        queries: 2_000,
        output: "BENCH_query.json".to_string(),
        check_targets: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} requires a value"))
        };
        match flag.as_str() {
            "--smoke" => config.smoke = true,
            "--seed" => config.seed = value("--seed").parse().expect("--seed"),
            "--queries" => config.queries = value("--queries").parse().expect("--queries"),
            "--output" => config.output = value("--output"),
            "--check-targets" => config.check_targets = Some(value("--check-targets")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: query_throughput [--smoke] [--seed S] [--queries N] [--output FILE] \
                     [--check-targets TARGETS.md]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if config.smoke {
        config.queries = config.queries.min(300);
    }
    config
}

/// Per-case measurement: the naive nested-loop path vs. the hybrid fast path
/// over the same query list, with answers cross-checked.
struct CaseReport {
    case: QueryCase,
    queries: usize,
    naive_micros: f64,
    fast_micros: f64,
}

impl CaseReport {
    fn speedup(&self) -> f64 {
        if self.fast_micros > 0.0 {
            self.naive_micros / self.fast_micros
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"case\":{},\"queries\":{},\"naive_us\":{:.4},\"fast_us\":{:.4},\"speedup\":{:.2}}}",
            self.case.number(),
            self.queries,
            self.naive_micros,
            self.fast_micros,
            self.speedup()
        )
    }
}

/// Times `f` over enough repetitions of the query list to cross `min_nanos`,
/// returning microseconds per query.
fn time_per_query(
    queries: &[(VertexId, VertexId)],
    min_nanos: u128,
    mut f: impl FnMut(VertexId, VertexId) -> bool,
) -> f64 {
    assert!(!queries.is_empty());
    let mut reps = 0u32;
    let started = Instant::now();
    loop {
        let mut sink = 0usize;
        for &(s, t) in queries {
            sink += f(s, t) as usize;
        }
        std::hint::black_box(sink);
        reps += 1;
        if started.elapsed().as_nanos() >= min_nanos || reps >= 1_000 {
            break;
        }
    }
    started.elapsed().as_secs_f64() * 1e6 / (reps as usize * queries.len()) as f64
}

fn measure_case(
    g: &DiGraph,
    index: &KReachIndex,
    case: QueryCase,
    queries: &[(VertexId, VertexId)],
    min_nanos: u128,
) -> CaseReport {
    // Answers must be byte-identical before anything is timed.
    for &(s, t) in queries {
        let (fast, fast_case) = index.query_with_case(g, s, t);
        let (naive, _) = index.query_with_case_naive(g, s, t);
        assert_eq!(fast_case, case, "workload bucket mislabeled ({s},{t})");
        assert_eq!(fast, naive, "fast/naive divergence on ({s},{t})");
    }
    let naive_micros = time_per_query(queries, min_nanos, |s, t| {
        index.query_with_case_naive(g, s, t).0
    });
    let fast_micros = time_per_query(queries, min_nanos, |s, t| index.query_with_case(g, s, t).0);
    CaseReport {
        case,
        queries: queries.len(),
        naive_micros,
        fast_micros,
    }
}

/// Batched (target-grouped) Case-4 dispatch vs. one `query` call per member,
/// over the same groups, answers cross-checked byte-for-byte first.
struct BatchedReport {
    batch: usize,
    per_query_micros: f64,
    batched_micros: f64,
}

impl BatchedReport {
    fn speedup(&self) -> f64 {
        if self.batched_micros > 0.0 {
            self.per_query_micros / self.batched_micros
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"batch\":{},\"per_query_us\":{:.4},\"batched_us\":{:.4},\"speedup\":{:.2}}}",
            self.batch,
            self.per_query_micros,
            self.batched_micros,
            self.speedup()
        )
    }
}

/// Measures `groups` (each a shared target plus `batch` sources) through the
/// grouped kernel and through per-query calls, µs per answered query each way.
fn measure_batched(
    g: &DiGraph,
    index: &KReachIndex,
    groups: &[(VertexId, Vec<VertexId>)],
    min_nanos: u128,
) -> BatchedReport {
    let batch = groups[0].1.len();
    let total: usize = groups.iter().map(|(_, sources)| sources.len()).sum();
    let mut answers = vec![false; batch];
    // Byte-identical before anything is timed.
    for (t, sources) in groups {
        answers.clear();
        answers.resize(sources.len(), false);
        index.query_group_k(g, sources, *t, index.k(), &mut answers);
        for (&answer, &s) in answers.iter().zip(sources) {
            assert_eq!(
                answer,
                index.query_with_case(g, s, *t).0,
                "batched/per-query divergence on ({s},{t})"
            );
        }
    }
    let time = |run_groups: &mut dyn FnMut() -> usize| {
        let mut reps = 0u32;
        let started = Instant::now();
        loop {
            std::hint::black_box(run_groups());
            reps += 1;
            if started.elapsed().as_nanos() >= min_nanos || reps >= 1_000 {
                break;
            }
        }
        started.elapsed().as_secs_f64() * 1e6 / (reps as usize * total) as f64
    };
    let per_query_micros = time(&mut || {
        let mut sink = 0usize;
        for (t, sources) in groups {
            for &s in sources {
                sink += index.query_with_case(g, s, *t).0 as usize;
            }
        }
        sink
    });
    let batched_micros = time(&mut || {
        let mut sink = 0usize;
        for (t, sources) in groups {
            index.query_group_k(g, sources, *t, index.k(), &mut answers);
            sink += answers.iter().filter(|&&a| a).count();
        }
        sink
    });
    BatchedReport {
        batch,
        per_query_micros,
        batched_micros,
    }
}

/// Convergence evidence for the adaptive dense-row tuner: an index built at
/// a deliberately detuned threshold is served under a byte budget until the
/// engine's retunes settle, then its throughput is compared against the
/// statically auto-tuned build.
struct AdaptiveReport {
    detuned_threshold: usize,
    budget_bytes: usize,
    static_qps: f64,
    cold_qps: f64,
    warm_qps: f64,
    retunes: u64,
    rows_promoted: u64,
    rows_demoted: u64,
    dense_rows_start: usize,
    dense_rows_end: usize,
    /// Dense-row footprint (index-graph accel bytes) — the number the byte
    /// budget governs.
    dense_bytes_start: usize,
    dense_bytes_end: usize,
}

impl AdaptiveReport {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"detuned_threshold\":{},\"budget_bytes\":{},",
                "\"static_qps\":{:.1},\"cold_qps\":{:.1},\"warm_qps\":{:.1},",
                "\"retunes\":{},\"rows_promoted\":{},\"rows_demoted\":{},",
                "\"dense_rows_start\":{},\"dense_rows_end\":{},",
                "\"dense_bytes_start\":{},\"dense_bytes_end\":{}}}"
            ),
            self.detuned_threshold,
            self.budget_bytes,
            self.static_qps,
            self.cold_qps,
            self.warm_qps,
            self.retunes,
            self.rows_promoted,
            self.rows_demoted,
            self.dense_rows_start,
            self.dense_rows_end,
            self.dense_bytes_start,
            self.dense_bytes_end,
        )
    }
}

fn adaptive_run(
    g: &Arc<DiGraph>,
    static_qps: f64,
    detuned_threshold: usize,
    budget_bytes: usize,
    queries: &[(VertexId, VertexId)],
) -> AdaptiveReport {
    let k = 3;
    let detuned = KReachIndex::build(
        g.as_ref(),
        k,
        BuildOptions {
            dense_row_threshold: Some(detuned_threshold),
            ..BuildOptions::default()
        },
    );
    let dense_rows_start = detuned.index_graph().dense_row_count();
    let dense_bytes_start = detuned.index_graph().accel_size_bytes();
    let backend = Arc::new(KReachBackend::new(Arc::clone(g), detuned));
    let engine = BatchEngine::new(
        Arc::clone(&backend) as _,
        EngineConfig {
            cache_capacity: 0,
            accel_budget: budget_bytes,
            ..EngineConfig::default()
        },
    );
    let batch = QueryBatch::new(queries.iter().map(|&(s, t)| Query { s, t, k }).collect());
    let cold_qps = engine
        .run(&batch)
        .expect("workload in range")
        .stats
        .queries_per_sec;
    // Warm until at least three retune windows have elapsed, so the heat
    // counters the tuner ranks by reflect the served mix.
    let rounds = (3 * ACCEL_RETUNE_INTERVAL as usize).div_ceil(batch.len().max(1)) + 1;
    for _ in 0..rounds {
        engine.run(&batch).expect("workload in range");
    }
    let warm_qps = engine
        .run(&batch)
        .expect("workload in range")
        .stats
        .queries_per_sec;
    let info = engine.info();
    AdaptiveReport {
        detuned_threshold,
        budget_bytes,
        static_qps,
        cold_qps,
        warm_qps,
        retunes: info.accel_retunes,
        rows_promoted: info.accel_promoted,
        rows_demoted: info.accel_demoted,
        dense_rows_start,
        dense_rows_end: info.accel_dense_rows,
        dense_bytes_start,
        dense_bytes_end: backend.index().index_graph().accel_size_bytes(),
    }
}

/// Cost of attaching the v2 telemetry sinks — the rolling [`WindowStats`]
/// and the [`FlightRecorder`] — to the engine, against the same engine
/// bare. Both sides take the best of three fresh-engine runs so scheduler
/// noise doesn't masquerade as overhead; the window feed is one atomic
/// batch per engine run, so the per-query p50 must stay inside the 5%
/// budget the observability layer is held to.
struct ObsWindowReport {
    baseline_p50_us: f64,
    instrumented_p50_us: f64,
    budget_pct: f64,
}

impl ObsWindowReport {
    fn overhead_pct(&self) -> f64 {
        if self.baseline_p50_us > 0.0 {
            (self.instrumented_p50_us - self.baseline_p50_us) / self.baseline_p50_us * 100.0
        } else {
            0.0
        }
    }

    fn within_budget(&self) -> bool {
        self.overhead_pct() < self.budget_pct
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"baseline_p50_us\":{:.4},\"instrumented_p50_us\":{:.4},",
                "\"overhead_pct\":{:.2},\"budget_pct\":{:.1},\"within_budget\":{}}}"
            ),
            self.baseline_p50_us,
            self.instrumented_p50_us,
            self.overhead_pct(),
            self.budget_pct,
            self.within_budget(),
        )
    }
}

fn obs_window_run(
    g: &Arc<DiGraph>,
    index: &KReachIndex,
    queries: &[(VertexId, VertexId)],
) -> ObsWindowReport {
    let batch = QueryBatch::new(
        queries
            .iter()
            .map(|&(s, t)| Query { s, t, k: index.k() })
            .collect(),
    );
    let best_p50 = |attach_sinks: bool| -> f64 {
        (0..3)
            .map(|_| {
                let engine = BatchEngine::new(
                    Arc::new(KReachBackend::new(Arc::clone(g), index.clone())),
                    EngineConfig {
                        cache_capacity: 0,
                        ..EngineConfig::default()
                    },
                );
                if attach_sinks {
                    let windows = Arc::new(WindowStats::new());
                    engine.set_windows(Arc::clone(&windows));
                    engine.set_events(Arc::new(FlightRecorder::default()));
                    let stats = engine.run(&batch).expect("workload in range").stats;
                    // The sinks must actually be live for the comparison
                    // to mean anything.
                    assert!(
                        windows.snapshot(60).queries > 0,
                        "window sink saw no queries"
                    );
                    stats.p50_micros
                } else {
                    engine
                        .run(&batch)
                        .expect("workload in range")
                        .stats
                        .p50_micros
                }
            })
            .fold(f64::INFINITY, f64::min)
    };
    ObsWindowReport {
        baseline_p50_us: best_p50(false),
        instrumented_p50_us: best_p50(true),
        budget_pct: 5.0,
    }
}

struct WorkloadReport {
    name: String,
    vertices: usize,
    edges: usize,
    k: u32,
    cover_size: usize,
    dense_rows: usize,
    dense_threshold: usize,
    accel_bytes: usize,
    /// Fraction of uniform random pairs classified into each case (the
    /// Table-8 "cover-hit" distribution).
    case_distribution: [f64; 4],
    cases: Vec<CaseReport>,
    /// Target-grouped batched dispatch vs. per-query calls at several batch
    /// sizes (hub workload only; empty elsewhere).
    batched: Vec<BatchedReport>,
    /// Adaptive dense-row tuner convergence run (uniform workload only).
    adaptive: Option<AdaptiveReport>,
    /// Engine batch run with the production no-op recorder.
    engine: EngineStats,
    /// The same batch fully traced, to keep the instrumentation overhead
    /// honest (before/after p50 in one artifact).
    engine_traced: EngineStats,
    /// The same batch with the rolling-window and flight-recorder sinks
    /// attached, vs bare — the v2 telemetry overhead audit.
    obs_window: ObsWindowReport,
}

impl WorkloadReport {
    fn to_json(&self) -> String {
        let cases: Vec<String> = self.cases.iter().map(CaseReport::to_json).collect();
        let batched: Vec<String> = self.batched.iter().map(BatchedReport::to_json).collect();
        let adaptive = self
            .adaptive
            .as_ref()
            .map_or_else(|| "null".to_string(), AdaptiveReport::to_json);
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"vertices\":{},\"edges\":{},\"k\":{},",
                "\"cover_size\":{},\"dense_rows\":{},\"dense_threshold\":{},",
                "\"accel_bytes\":{},",
                "\"case_distribution\":[{:.4},{:.4},{:.4},{:.4}],",
                "\"cases\":[{}],\"batched\":[{}],\"adaptive\":{},",
                "\"engine_qps\":{:.1},",
                // The engine objects share EngineStats' JSON schema — the
                // same "cases"/"resolutions" labeled-count objects the
                // serving path reports.
                "\"engine\":{},\"engine_traced\":{},\"obs_window\":{}}}"
            ),
            self.name,
            self.vertices,
            self.edges,
            self.k,
            self.cover_size,
            self.dense_rows,
            self.dense_threshold,
            self.accel_bytes,
            self.case_distribution[0],
            self.case_distribution[1],
            self.case_distribution[2],
            self.case_distribution[3],
            cases.join(","),
            batched.join(","),
            adaptive,
            self.engine.queries_per_sec,
            self.engine.to_json(),
            self.engine_traced.to_json(),
            self.obs_window.to_json(),
        )
    }

    fn print(&self) {
        let mut table = Table::new(["case", "queries", "naive µs", "fast µs", "speedup"]);
        for report in &self.cases {
            table.row([
                format!("case {}", report.case.number()),
                report.queries.to_string(),
                format!("{:.3}", report.naive_micros),
                format!("{:.3}", report.fast_micros),
                format!("{:.2}x", report.speedup()),
            ]);
        }
        table.print(&format!(
            "{} (|V| = {}, |E| = {}, k = {}, cover {}, {} bitset rows @ threshold {}, \
             case mix {:.0}/{:.0}/{:.0}/{:.0}%, engine {:.0} q/s)",
            self.name,
            self.vertices,
            self.edges,
            self.k,
            self.cover_size,
            self.dense_rows,
            self.dense_threshold,
            100.0 * self.case_distribution[0],
            100.0 * self.case_distribution[1],
            100.0 * self.case_distribution[2],
            100.0 * self.case_distribution[3],
            self.engine.queries_per_sec,
        ));
        println!(
            "  engine p50 {:.3} µs (no-op recorder) vs {:.3} µs traced · \
             batch case mix {:?}",
            self.engine.p50_micros, self.engine_traced.p50_micros, self.engine.case_counts,
        );
        println!(
            "  obs window: p50 {:.3} µs bare vs {:.3} µs with windows+events \
             ({:+.2}%, budget {:.0}%)",
            self.obs_window.baseline_p50_us,
            self.obs_window.instrumented_p50_us,
            self.obs_window.overhead_pct(),
            self.obs_window.budget_pct,
        );
        for report in &self.batched {
            println!(
                "  batched case-4 @ batch {}: {:.3} µs/q grouped vs {:.3} µs/q per-query \
                 ({:.2}x)",
                report.batch,
                report.batched_micros,
                report.per_query_micros,
                report.speedup(),
            );
        }
        if let Some(adaptive) = &self.adaptive {
            println!(
                "  adaptive: threshold {} under {} B budget: {:.0} q/s cold -> {:.0} q/s warm \
                 (static {:.0} q/s) · {} retunes, +{}/-{} rows, dense {} -> {}, {} -> {} dense B",
                adaptive.detuned_threshold,
                adaptive.budget_bytes,
                adaptive.cold_qps,
                adaptive.warm_qps,
                adaptive.static_qps,
                adaptive.retunes,
                adaptive.rows_promoted,
                adaptive.rows_demoted,
                adaptive.dense_rows_start,
                adaptive.dense_rows_end,
                adaptive.dense_bytes_start,
                adaptive.dense_bytes_end,
            );
        }
    }
}

/// The hub-fanout graph: `mids` cover vertices split into two halves that
/// are densely connected internally (random forward mid→mid edges) but never
/// across; uncovered sources fan into the lower half and uncovered targets
/// are fed from either half. Every source/target query is Case 4 with `fan`
/// covered neighbours a side; pairs fed from the upper half are negatives
/// that force full scans.
struct HubFanout {
    graph: DiGraph,
    mids: usize,
    sources: usize,
    targets: usize,
}

impl HubFanout {
    fn build(mids: usize, sources: usize, targets: usize, fan: usize, rng: &mut StdRng) -> Self {
        assert!(mids.is_multiple_of(2));
        let half = mids / 2;
        let n = mids + sources + targets;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        // Dense intra-half connectivity: ~4 forward random edges per mid keep
        // index rows large (a mid reaches a big slice of its half within k).
        for m in 0..mids {
            let (lo, hi) = if m < half { (0, half) } else { (half, mids) };
            edges.push((m as u32, (lo + (m + 1 - lo) % (hi - lo)) as u32));
            for _ in 0..4 {
                let to = rng.gen_range(lo as u32..hi as u32);
                if to as usize != m {
                    edges.push((m as u32, to));
                }
            }
        }
        // Sources fan into the lower half; targets are fed half from the
        // lower half (reachable pairs) and half from the upper (negatives).
        for s in 0..sources {
            let sv = (mids + s) as u32;
            for _ in 0..fan {
                edges.push((sv, rng.gen_range(0u32..half as u32)));
            }
        }
        for t in 0..targets {
            let tv = (mids + sources + t) as u32;
            let (lo, hi) = if t % 2 == 0 {
                (half as u32, mids as u32)
            } else {
                (0u32, half as u32)
            };
            for _ in 0..fan {
                edges.push((rng.gen_range(lo..hi), tv));
            }
        }
        HubFanout {
            graph: DiGraph::from_edges(n, edges),
            mids,
            sources,
            targets,
        }
    }

    fn mid(&self, i: usize) -> VertexId {
        VertexId((i % self.mids) as u32)
    }

    fn source(&self, i: usize) -> VertexId {
        VertexId((self.mids + i % self.sources) as u32)
    }

    fn target(&self, i: usize) -> VertexId {
        VertexId((self.mids + self.sources + i % self.targets) as u32)
    }
}

/// Uniform random pairs bucketed by query case, capped per bucket.
fn bucket_uniform(
    g: &DiGraph,
    index: &KReachIndex,
    per_case: usize,
    rng: &mut StdRng,
) -> ([Vec<(VertexId, VertexId)>; 4], [f64; 4]) {
    let n = g.vertex_count() as u32;
    let mut buckets: [Vec<(VertexId, VertexId)>; 4] = Default::default();
    let mut seen = [0usize; 4];
    let mut sampled = 0usize;
    let budget = per_case * 400;
    while sampled < budget && buckets.iter().any(|b| b.len() < per_case) {
        let s = VertexId(rng.gen_range(0u32..n));
        let t = VertexId(rng.gen_range(0u32..n));
        let case = index.classify(s, t).number() as usize - 1;
        seen[case] += 1;
        sampled += 1;
        if buckets[case].len() < per_case {
            buckets[case].push((s, t));
        }
    }
    let total: usize = seen.iter().sum();
    let mut distribution = [0.0f64; 4];
    for (slot, &count) in distribution.iter_mut().zip(seen.iter()) {
        *slot = count as f64 / total.max(1) as f64;
    }
    (buckets, distribution)
}

/// Runs the query list through the batch engine twice — once with the
/// production no-op recorder and once fully traced — so the artifact
/// records both the fast-path p50 and the cost of turning tracing on.
fn engine_runs(
    g: &Arc<DiGraph>,
    index: &KReachIndex,
    queries: &[(VertexId, VertexId)],
) -> (EngineStats, EngineStats) {
    let batch = QueryBatch::new(
        queries
            .iter()
            .map(|&(s, t)| Query { s, t, k: index.k() })
            .collect(),
    );
    let run = |recorder: Recorder| {
        let engine = BatchEngine::with_recorder(
            Arc::new(KReachBackend::new(Arc::clone(g), index.clone())),
            EngineConfig {
                // The cache would absorb every repeat; this measures the
                // query path itself.
                cache_capacity: 0,
                ..EngineConfig::default()
            },
            recorder,
        );
        engine.run(&batch).expect("workload in range").stats
    };
    (run(Recorder::disabled()), run(Recorder::new(4096)))
}

fn hub_workload(config: &Config, min_nanos: u128) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x48_55_42);
    let (mids, endpoints, fan) = if config.smoke {
        (256, 48, 16)
    } else {
        (2048, 192, 64)
    };
    let hub = HubFanout::build(mids, endpoints, endpoints, fan, &mut rng);
    let g = Arc::new(hub.graph.clone());
    let k = 3;
    let cover = VertexCover::from_members(g.vertex_count(), (0..mids as u32).map(VertexId));
    assert!(
        cover.covers_all_edges(g.as_ref()),
        "mids must cover all edges"
    );
    let index = KReachIndex::build_with_cover(g.as_ref(), k, &cover, BuildOptions::default());

    let per_case = config.queries.max(64);
    let mut case4 = Vec::with_capacity(per_case);
    let mut case3 = Vec::with_capacity(per_case);
    let mut case2 = Vec::with_capacity(per_case);
    let mut case1 = Vec::with_capacity(per_case);
    for i in 0..per_case {
        case4.push((hub.source(i), hub.target(i * 7 + 1)));
        case3.push((
            hub.source(i),
            hub.mid(rng.gen_range(0..mids as u32) as usize),
        ));
        case2.push((
            hub.mid(rng.gen_range(0..mids as u32) as usize),
            hub.target(i),
        ));
        case1.push((
            hub.mid(rng.gen_range(0..mids as u32) as usize),
            hub.mid(rng.gen_range(0..mids as u32) as usize),
        ));
    }

    // Target-grouped batches: for each batch size, 32 fan-in groups of
    // distinct uncovered targets, every member Case 4 — the shape the
    // serving path's grouped dispatch exploits.
    let batched = [16usize, 64, 256]
        .iter()
        .map(|&batch| {
            let groups: Vec<(VertexId, Vec<VertexId>)> = (0..32)
                .map(|j| {
                    let sources = (0..batch).map(|i| hub.source(i * 3 + j)).collect();
                    (hub.target(j), sources)
                })
                .collect();
            measure_batched(&g, &index, &groups, min_nanos)
        })
        .collect();

    let (engine, engine_traced) = engine_runs(&g, &index, &case4);
    let obs_window = obs_window_run(&g, &index, &case4);
    let ig = index.index_graph();
    WorkloadReport {
        name: "hub-fanout".to_string(),
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        k,
        cover_size: index.cover_size(),
        dense_rows: ig.dense_row_count(),
        dense_threshold: ig.dense_threshold(),
        // Whole acceleration footprint: dense bitset rows plus the lazily
        // built position-adjacency tables (the old number missed the latter).
        accel_bytes: index.accel_size_bytes(),
        // The crafted workload is balanced by construction.
        case_distribution: [0.25, 0.25, 0.25, 0.25],
        cases: vec![
            measure_case(&g, &index, QueryCase::BothInCover, &case1, min_nanos),
            measure_case(&g, &index, QueryCase::SourceInCover, &case2, min_nanos),
            measure_case(&g, &index, QueryCase::TargetInCover, &case3, min_nanos),
            measure_case(&g, &index, QueryCase::NeitherInCover, &case4, min_nanos),
        ],
        batched,
        adaptive: None,
        engine,
        engine_traced,
        obs_window,
    }
}

fn uniform_workload(config: &Config, min_nanos: u128) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x554E49);
    let (n, m, hubs) = if config.smoke {
        (2_000, 8_000, 6)
    } else {
        (20_000, 90_000, 12)
    };
    let g = Arc::new(GeneratorSpec::PowerLaw { n, m, hubs }.generate(config.seed));
    let k = 3;
    let index = KReachIndex::build(g.as_ref(), k, BuildOptions::default());
    let per_case = config.queries.max(64);
    let (buckets, distribution) = bucket_uniform(&g, &index, per_case, &mut rng);
    let cases = [
        QueryCase::BothInCover,
        QueryCase::SourceInCover,
        QueryCase::TargetInCover,
        QueryCase::NeitherInCover,
    ];
    let mut reports = Vec::new();
    let mut engine_queries = Vec::new();
    for (case, bucket) in cases.into_iter().zip(buckets.iter()) {
        if bucket.is_empty() {
            continue;
        }
        engine_queries.extend_from_slice(bucket);
        reports.push(measure_case(&g, &index, case, bucket, min_nanos));
    }
    let (engine, engine_traced) = engine_runs(&g, &index, &engine_queries);
    let obs_window = obs_window_run(&g, &index, &engine_queries);
    let ig = index.index_graph();
    // Serve the same mix from a detuned build (threshold 128 promotes far
    // more rows than auto-tuning would) under the static build's byte
    // budget; the engine's retunes should converge on comparable throughput.
    let adaptive = adaptive_run(
        &g,
        engine.queries_per_sec,
        128,
        ig.accel_size_bytes().max(1),
        &engine_queries,
    );
    WorkloadReport {
        name: "uniform".to_string(),
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        k,
        cover_size: index.cover_size(),
        dense_rows: ig.dense_row_count(),
        dense_threshold: ig.dense_threshold(),
        accel_bytes: index.accel_size_bytes(),
        case_distribution: distribution,
        cases: reports,
        batched: Vec::new(),
        adaptive: Some(adaptive),
        engine,
        engine_traced,
        obs_window,
    }
}

fn main() {
    let config = parse_args();
    let min_nanos: u128 = if config.smoke { 2_000_000 } else { 40_000_000 };
    let workloads = vec![
        hub_workload(&config, min_nanos),
        uniform_workload(&config, min_nanos),
    ];
    for workload in &workloads {
        workload.print();
    }
    let objects: Vec<String> = workloads.iter().map(WorkloadReport::to_json).collect();
    // Top-level obs_window block: the worst overhead across workloads, so a
    // reader (or a gate) finds the budget verdict at the artifact root.
    let worst_obs = workloads
        .iter()
        .map(|w| &w.obs_window)
        .max_by(|a, b| {
            a.overhead_pct()
                .partial_cmp(&b.overhead_pct())
                .expect("overhead is finite")
        })
        .expect("at least one workload");
    let json = format!(
        "{{\"bench\":\"query_throughput\",\"smoke\":{},\"seed\":{},\
         \"obs_window\":{},\"workloads\":[{}]}}\n",
        config.smoke,
        config.seed,
        worst_obs.to_json(),
        objects.join(","),
    );
    std::fs::write(&config.output, &json).expect("write BENCH_query.json");
    eprintln!("wrote {}", config.output);
    eprintln!(
        "obs window overhead (worst workload): {:+.2}% of query p50 (budget {:.0}%)",
        worst_obs.overhead_pct(),
        worst_obs.budget_pct,
    );

    // The headline claim this bench exists to track: Case 4 on the
    // hub-fanout workload must not regress below par with the naive path.
    let case4 = &workloads[0].cases[3];
    eprintln!(
        "hub-fanout case-4 speedup: {:.2}x (naive {:.3} µs -> fast {:.3} µs)",
        case4.speedup(),
        case4.naive_micros,
        case4.fast_micros
    );

    if let Some(targets) = &config.check_targets {
        if let Err(message) = check_targets(targets, config.smoke, case4.fast_micros) {
            eprintln!("bench gate FAILED: {message}");
            std::process::exit(1);
        }
    }
}

/// Regression gate against the calibrated targets table
/// (`docs/bench-targets.md`): a markdown table with a `metric` column and
/// `smoke`/`full` value columns. Fails when the measured hub Case-4
/// fast-path microseconds exceed twice the checked-in target.
fn check_targets(path: &str, smoke: bool, hub_case4_fast_us: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let column = if smoke { 1 } else { 2 };
    for line in text.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.first().copied() != Some("hub_case4_fast_us") {
            continue;
        }
        let target: f64 = cells
            .get(column)
            .ok_or_else(|| format!("{path}: hub_case4_fast_us row is missing column {column}"))?
            .parse()
            .map_err(|e| format!("{path}: bad hub_case4_fast_us value: {e}"))?;
        if hub_case4_fast_us > 2.0 * target {
            return Err(format!(
                "hub case-4 fast path measured {hub_case4_fast_us:.3} µs, \
                 more than 2x the calibrated target {target:.3} µs"
            ));
        }
        eprintln!(
            "bench gate ok: hub case-4 fast path {hub_case4_fast_us:.3} µs \
             within 2x of target {target:.3} µs"
        );
        return Ok(());
    }
    Err(format!("{path}: no hub_case4_fast_us row found"))
}
