//! Query-path throughput suite: the Algorithm-2 fast path vs. the naive
//! nested-loop formulation, per query case, plus engine batch throughput.
//!
//! Two workloads:
//!
//! * **hub-fanout** — a synthetic celebrity graph built for the worst Case 4
//!   of §4.2.2: every query endpoint is an *uncovered* vertex with a large
//!   covered neighbourhood (fan `f`), so the naive path pays
//!   `O(f² · log outDeg_I)` binary-search probes per query while the hybrid
//!   path answers with bitset-ANDs over distance-bucketed cover rows.
//!   Negative cross-partition pairs are included deliberately: they force
//!   full scans on both paths (no early exit), which is where the asymptotic
//!   gap actually shows.
//! * **uniform** — a generated power-law graph with uniform random pairs,
//!   reporting the query-case (cover-hit) distribution of Table 8 and
//!   guarding against regressions on the common Cases 1–3.
//!
//! Emits a human table per workload and a machine-readable
//! `BENCH_query.json` (override with `--output`) with before/after
//! microseconds per case, speedups, the case distribution, and engine
//! queries/sec — the perf-trajectory artifact CI uploads per PR.
//!
//! `--smoke` shrinks everything for CI; the JSON shape is identical.

use kreach_bench::Table;
use kreach_core::{BuildOptions, KReachIndex, QueryCase, VertexCover};
use kreach_engine::{BatchEngine, EngineConfig, EngineStats, KReachBackend, Query, QueryBatch};
use kreach_graph::generators::GeneratorSpec;
use kreach_graph::{DiGraph, VertexId};
use kreach_obs::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    smoke: bool,
    seed: u64,
    queries: usize,
    output: String,
}

fn parse_args() -> Config {
    let mut config = Config {
        smoke: false,
        seed: 42,
        queries: 2_000,
        output: "BENCH_query.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} requires a value"))
        };
        match flag.as_str() {
            "--smoke" => config.smoke = true,
            "--seed" => config.seed = value("--seed").parse().expect("--seed"),
            "--queries" => config.queries = value("--queries").parse().expect("--queries"),
            "--output" => config.output = value("--output"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: query_throughput [--smoke] [--seed S] [--queries N] [--output FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if config.smoke {
        config.queries = config.queries.min(300);
    }
    config
}

/// Per-case measurement: the naive nested-loop path vs. the hybrid fast path
/// over the same query list, with answers cross-checked.
struct CaseReport {
    case: QueryCase,
    queries: usize,
    naive_micros: f64,
    fast_micros: f64,
}

impl CaseReport {
    fn speedup(&self) -> f64 {
        if self.fast_micros > 0.0 {
            self.naive_micros / self.fast_micros
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"case\":{},\"queries\":{},\"naive_us\":{:.4},\"fast_us\":{:.4},\"speedup\":{:.2}}}",
            self.case.number(),
            self.queries,
            self.naive_micros,
            self.fast_micros,
            self.speedup()
        )
    }
}

/// Times `f` over enough repetitions of the query list to cross `min_nanos`,
/// returning microseconds per query.
fn time_per_query(
    queries: &[(VertexId, VertexId)],
    min_nanos: u128,
    mut f: impl FnMut(VertexId, VertexId) -> bool,
) -> f64 {
    assert!(!queries.is_empty());
    let mut reps = 0u32;
    let started = Instant::now();
    loop {
        let mut sink = 0usize;
        for &(s, t) in queries {
            sink += f(s, t) as usize;
        }
        std::hint::black_box(sink);
        reps += 1;
        if started.elapsed().as_nanos() >= min_nanos || reps >= 1_000 {
            break;
        }
    }
    started.elapsed().as_secs_f64() * 1e6 / (reps as usize * queries.len()) as f64
}

fn measure_case(
    g: &DiGraph,
    index: &KReachIndex,
    case: QueryCase,
    queries: &[(VertexId, VertexId)],
    min_nanos: u128,
) -> CaseReport {
    // Answers must be byte-identical before anything is timed.
    for &(s, t) in queries {
        let (fast, fast_case) = index.query_with_case(g, s, t);
        let (naive, _) = index.query_with_case_naive(g, s, t);
        assert_eq!(fast_case, case, "workload bucket mislabeled ({s},{t})");
        assert_eq!(fast, naive, "fast/naive divergence on ({s},{t})");
    }
    let naive_micros = time_per_query(queries, min_nanos, |s, t| {
        index.query_with_case_naive(g, s, t).0
    });
    let fast_micros = time_per_query(queries, min_nanos, |s, t| index.query_with_case(g, s, t).0);
    CaseReport {
        case,
        queries: queries.len(),
        naive_micros,
        fast_micros,
    }
}

struct WorkloadReport {
    name: String,
    vertices: usize,
    edges: usize,
    k: u32,
    cover_size: usize,
    dense_rows: usize,
    dense_threshold: usize,
    accel_bytes: usize,
    /// Fraction of uniform random pairs classified into each case (the
    /// Table-8 "cover-hit" distribution).
    case_distribution: [f64; 4],
    cases: Vec<CaseReport>,
    /// Engine batch run with the production no-op recorder.
    engine: EngineStats,
    /// The same batch fully traced, to keep the instrumentation overhead
    /// honest (before/after p50 in one artifact).
    engine_traced: EngineStats,
}

impl WorkloadReport {
    fn to_json(&self) -> String {
        let cases: Vec<String> = self.cases.iter().map(CaseReport::to_json).collect();
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"vertices\":{},\"edges\":{},\"k\":{},",
                "\"cover_size\":{},\"dense_rows\":{},\"dense_threshold\":{},",
                "\"accel_bytes\":{},",
                "\"case_distribution\":[{:.4},{:.4},{:.4},{:.4}],",
                "\"cases\":[{}],\"engine_qps\":{:.1},",
                // The engine objects share EngineStats' JSON schema — the
                // same "cases"/"resolutions" labeled-count objects the
                // serving path reports.
                "\"engine\":{},\"engine_traced\":{}}}"
            ),
            self.name,
            self.vertices,
            self.edges,
            self.k,
            self.cover_size,
            self.dense_rows,
            self.dense_threshold,
            self.accel_bytes,
            self.case_distribution[0],
            self.case_distribution[1],
            self.case_distribution[2],
            self.case_distribution[3],
            cases.join(","),
            self.engine.queries_per_sec,
            self.engine.to_json(),
            self.engine_traced.to_json(),
        )
    }

    fn print(&self) {
        let mut table = Table::new(["case", "queries", "naive µs", "fast µs", "speedup"]);
        for report in &self.cases {
            table.row([
                format!("case {}", report.case.number()),
                report.queries.to_string(),
                format!("{:.3}", report.naive_micros),
                format!("{:.3}", report.fast_micros),
                format!("{:.2}x", report.speedup()),
            ]);
        }
        table.print(&format!(
            "{} (|V| = {}, |E| = {}, k = {}, cover {}, {} bitset rows @ threshold {}, \
             case mix {:.0}/{:.0}/{:.0}/{:.0}%, engine {:.0} q/s)",
            self.name,
            self.vertices,
            self.edges,
            self.k,
            self.cover_size,
            self.dense_rows,
            self.dense_threshold,
            100.0 * self.case_distribution[0],
            100.0 * self.case_distribution[1],
            100.0 * self.case_distribution[2],
            100.0 * self.case_distribution[3],
            self.engine.queries_per_sec,
        ));
        println!(
            "  engine p50 {:.3} µs (no-op recorder) vs {:.3} µs traced · \
             batch case mix {:?}",
            self.engine.p50_micros, self.engine_traced.p50_micros, self.engine.case_counts,
        );
    }
}

/// The hub-fanout graph: `mids` cover vertices split into two halves that
/// are densely connected internally (random forward mid→mid edges) but never
/// across; uncovered sources fan into the lower half and uncovered targets
/// are fed from either half. Every source/target query is Case 4 with `fan`
/// covered neighbours a side; pairs fed from the upper half are negatives
/// that force full scans.
struct HubFanout {
    graph: DiGraph,
    mids: usize,
    sources: usize,
    targets: usize,
}

impl HubFanout {
    fn build(mids: usize, sources: usize, targets: usize, fan: usize, rng: &mut StdRng) -> Self {
        assert!(mids.is_multiple_of(2));
        let half = mids / 2;
        let n = mids + sources + targets;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        // Dense intra-half connectivity: ~4 forward random edges per mid keep
        // index rows large (a mid reaches a big slice of its half within k).
        for m in 0..mids {
            let (lo, hi) = if m < half { (0, half) } else { (half, mids) };
            edges.push((m as u32, (lo + (m + 1 - lo) % (hi - lo)) as u32));
            for _ in 0..4 {
                let to = rng.gen_range(lo as u32..hi as u32);
                if to as usize != m {
                    edges.push((m as u32, to));
                }
            }
        }
        // Sources fan into the lower half; targets are fed half from the
        // lower half (reachable pairs) and half from the upper (negatives).
        for s in 0..sources {
            let sv = (mids + s) as u32;
            for _ in 0..fan {
                edges.push((sv, rng.gen_range(0u32..half as u32)));
            }
        }
        for t in 0..targets {
            let tv = (mids + sources + t) as u32;
            let (lo, hi) = if t % 2 == 0 {
                (half as u32, mids as u32)
            } else {
                (0u32, half as u32)
            };
            for _ in 0..fan {
                edges.push((rng.gen_range(lo..hi), tv));
            }
        }
        HubFanout {
            graph: DiGraph::from_edges(n, edges),
            mids,
            sources,
            targets,
        }
    }

    fn mid(&self, i: usize) -> VertexId {
        VertexId((i % self.mids) as u32)
    }

    fn source(&self, i: usize) -> VertexId {
        VertexId((self.mids + i % self.sources) as u32)
    }

    fn target(&self, i: usize) -> VertexId {
        VertexId((self.mids + self.sources + i % self.targets) as u32)
    }
}

/// Uniform random pairs bucketed by query case, capped per bucket.
fn bucket_uniform(
    g: &DiGraph,
    index: &KReachIndex,
    per_case: usize,
    rng: &mut StdRng,
) -> ([Vec<(VertexId, VertexId)>; 4], [f64; 4]) {
    let n = g.vertex_count() as u32;
    let mut buckets: [Vec<(VertexId, VertexId)>; 4] = Default::default();
    let mut seen = [0usize; 4];
    let mut sampled = 0usize;
    let budget = per_case * 400;
    while sampled < budget && buckets.iter().any(|b| b.len() < per_case) {
        let s = VertexId(rng.gen_range(0u32..n));
        let t = VertexId(rng.gen_range(0u32..n));
        let case = index.classify(s, t).number() as usize - 1;
        seen[case] += 1;
        sampled += 1;
        if buckets[case].len() < per_case {
            buckets[case].push((s, t));
        }
    }
    let total: usize = seen.iter().sum();
    let mut distribution = [0.0f64; 4];
    for (slot, &count) in distribution.iter_mut().zip(seen.iter()) {
        *slot = count as f64 / total.max(1) as f64;
    }
    (buckets, distribution)
}

/// Runs the query list through the batch engine twice — once with the
/// production no-op recorder and once fully traced — so the artifact
/// records both the fast-path p50 and the cost of turning tracing on.
fn engine_runs(
    g: &Arc<DiGraph>,
    index: &KReachIndex,
    queries: &[(VertexId, VertexId)],
) -> (EngineStats, EngineStats) {
    let batch = QueryBatch::new(
        queries
            .iter()
            .map(|&(s, t)| Query { s, t, k: index.k() })
            .collect(),
    );
    let run = |recorder: Recorder| {
        let engine = BatchEngine::with_recorder(
            Arc::new(KReachBackend::new(Arc::clone(g), index.clone())),
            EngineConfig {
                // The cache would absorb every repeat; this measures the
                // query path itself.
                cache_capacity: 0,
                ..EngineConfig::default()
            },
            recorder,
        );
        engine.run(&batch).expect("workload in range").stats
    };
    (run(Recorder::disabled()), run(Recorder::new(4096)))
}

fn hub_workload(config: &Config, min_nanos: u128) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x48_55_42);
    let (mids, endpoints, fan) = if config.smoke {
        (256, 48, 16)
    } else {
        (2048, 192, 64)
    };
    let hub = HubFanout::build(mids, endpoints, endpoints, fan, &mut rng);
    let g = Arc::new(hub.graph.clone());
    let k = 3;
    let cover = VertexCover::from_members(g.vertex_count(), (0..mids as u32).map(VertexId));
    assert!(
        cover.covers_all_edges(g.as_ref()),
        "mids must cover all edges"
    );
    let index = KReachIndex::build_with_cover(g.as_ref(), k, &cover, BuildOptions::default());

    let per_case = config.queries.max(64);
    let mut case4 = Vec::with_capacity(per_case);
    let mut case3 = Vec::with_capacity(per_case);
    let mut case2 = Vec::with_capacity(per_case);
    let mut case1 = Vec::with_capacity(per_case);
    for i in 0..per_case {
        case4.push((hub.source(i), hub.target(i * 7 + 1)));
        case3.push((
            hub.source(i),
            hub.mid(rng.gen_range(0..mids as u32) as usize),
        ));
        case2.push((
            hub.mid(rng.gen_range(0..mids as u32) as usize),
            hub.target(i),
        ));
        case1.push((
            hub.mid(rng.gen_range(0..mids as u32) as usize),
            hub.mid(rng.gen_range(0..mids as u32) as usize),
        ));
    }

    let (engine, engine_traced) = engine_runs(&g, &index, &case4);
    let ig = index.index_graph();
    WorkloadReport {
        name: "hub-fanout".to_string(),
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        k,
        cover_size: index.cover_size(),
        dense_rows: ig.dense_row_count(),
        dense_threshold: ig.dense_threshold(),
        accel_bytes: ig.accel_size_bytes(),
        // The crafted workload is balanced by construction.
        case_distribution: [0.25, 0.25, 0.25, 0.25],
        cases: vec![
            measure_case(&g, &index, QueryCase::BothInCover, &case1, min_nanos),
            measure_case(&g, &index, QueryCase::SourceInCover, &case2, min_nanos),
            measure_case(&g, &index, QueryCase::TargetInCover, &case3, min_nanos),
            measure_case(&g, &index, QueryCase::NeitherInCover, &case4, min_nanos),
        ],
        engine,
        engine_traced,
    }
}

fn uniform_workload(config: &Config, min_nanos: u128) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x554E49);
    let (n, m, hubs) = if config.smoke {
        (2_000, 8_000, 6)
    } else {
        (20_000, 90_000, 12)
    };
    let g = Arc::new(GeneratorSpec::PowerLaw { n, m, hubs }.generate(config.seed));
    let k = 3;
    let index = KReachIndex::build(g.as_ref(), k, BuildOptions::default());
    let per_case = config.queries.max(64);
    let (buckets, distribution) = bucket_uniform(&g, &index, per_case, &mut rng);
    let cases = [
        QueryCase::BothInCover,
        QueryCase::SourceInCover,
        QueryCase::TargetInCover,
        QueryCase::NeitherInCover,
    ];
    let mut reports = Vec::new();
    let mut engine_queries = Vec::new();
    for (case, bucket) in cases.into_iter().zip(buckets.iter()) {
        if bucket.is_empty() {
            continue;
        }
        engine_queries.extend_from_slice(bucket);
        reports.push(measure_case(&g, &index, case, bucket, min_nanos));
    }
    let (engine, engine_traced) = engine_runs(&g, &index, &engine_queries);
    let ig = index.index_graph();
    WorkloadReport {
        name: "uniform".to_string(),
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        k,
        cover_size: index.cover_size(),
        dense_rows: ig.dense_row_count(),
        dense_threshold: ig.dense_threshold(),
        accel_bytes: ig.accel_size_bytes(),
        case_distribution: distribution,
        cases: reports,
        engine,
        engine_traced,
    }
}

fn main() {
    let config = parse_args();
    let min_nanos: u128 = if config.smoke { 2_000_000 } else { 40_000_000 };
    let workloads = vec![
        hub_workload(&config, min_nanos),
        uniform_workload(&config, min_nanos),
    ];
    for workload in &workloads {
        workload.print();
    }
    let objects: Vec<String> = workloads.iter().map(WorkloadReport::to_json).collect();
    let json = format!(
        "{{\"bench\":\"query_throughput\",\"smoke\":{},\"seed\":{},\"workloads\":[{}]}}\n",
        config.smoke,
        config.seed,
        objects.join(","),
    );
    std::fs::write(&config.output, &json).expect("write BENCH_query.json");
    eprintln!("wrote {}", config.output);

    // The headline claim this bench exists to track: Case 4 on the
    // hub-fanout workload must not regress below par with the naive path.
    let case4 = &workloads[0].cases[3];
    eprintln!(
        "hub-fanout case-4 speedup: {:.2}x (naive {:.3} µs -> fast {:.3} µs)",
        case4.speedup(),
        case4.naive_micros,
        case4.fast_micros
    );
}
