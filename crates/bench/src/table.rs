//! Minimal fixed-width text table printer used by every table binary.

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells are rendered empty, extra cells are kept.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align the first column (names), right-align the rest (numbers).
                if i == 0 {
                    out.push_str(&format!("{cell:<width$}"));
                } else {
                    out.push_str(&format!("{cell:>width$}"));
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            render_row(&mut out, r);
        }
        out
    }

    /// Prints the table to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats a millisecond value with two decimals.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.2}")
}

/// Formats a byte count as MB with two decimals.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as a percentage with two decimals.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.2}", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["dataset", "ms"]);
        t.row(["AgroCyc", "12.50"]);
        t.row(["Xmark", "3.10"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[2].contains("AgroCyc"));
        // Numbers are right-aligned, so both value columns end at the same offset.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        t.row(["1", "2", "3", "4"]);
        let text = t.render();
        assert!(text.contains('4'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(1.2345), "1.23");
        assert_eq!(fmt_mb(1024 * 1024), "1.00");
        assert_eq!(fmt_pct(0.756), "75.60");
    }
}
