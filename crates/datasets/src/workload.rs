//! Query workloads: the "1 million randomly generated queries" of Section 6.
//!
//! The paper stresses (Table 8 and the surrounding discussion) that the
//! random workload is *not* biased towards the cheap Case-1 queries: most
//! random pairs have neither endpoint in the vertex cover. The workload
//! generator here reproduces exactly that protocol — uniform random ordered
//! pairs of vertices — and offers helpers to classify a workload by query
//! case and to compute the positive-answer rate, both of which the harness
//! reports.

use kreach_graph::{GraphView, VertexId};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration of a random query workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of `(s, t)` pairs to generate (the paper uses 1,000,000).
    pub queries: usize,
    /// RNG seed, so every index sees the identical workload.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 1_000_000,
            seed: 0x9e37_79b9,
        }
    }
}

/// A materialized list of query pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryWorkload {
    pairs: Vec<(VertexId, VertexId)>,
}

impl QueryWorkload {
    /// Generates `config.queries` uniform random ordered pairs over the
    /// vertices of `g` (self-pairs allowed, exactly as a uniform draw would).
    pub fn uniform<G: GraphView>(g: &G, config: WorkloadConfig) -> Self {
        let n = g.vertex_count() as u32;
        assert!(n > 0, "cannot generate queries for an empty graph");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pairs = (0..config.queries)
            .map(|_| (VertexId(rng.gen_range(0..n)), VertexId(rng.gen_range(0..n))))
            .collect();
        QueryWorkload { pairs }
    }

    /// Generates a skewed ("celebrity-heavy") workload: with probability
    /// `hot_fraction` each endpoint is drawn from the `hot_vertices`
    /// highest-degree vertices instead of uniformly.
    ///
    /// This models the serving-time skew the paper motivates in §4.3 — a
    /// small set of celebrity vertices appears in a disproportionate share
    /// of real queries — and is what makes a result cache effective: uniform
    /// pairs over a large graph essentially never repeat, hot pairs do.
    ///
    /// # Panics
    /// Panics if the graph is empty, `hot_vertices == 0`, or `hot_fraction`
    /// is outside `[0, 1]`.
    pub fn skewed<G: GraphView>(
        g: &G,
        config: WorkloadConfig,
        hot_vertices: usize,
        hot_fraction: f64,
    ) -> Self {
        let n = g.vertex_count() as u32;
        assert!(n > 0, "cannot generate queries for an empty graph");
        assert!(
            hot_vertices > 0,
            "skewed workload needs at least one hot vertex"
        );
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot_fraction must be in [0, 1], got {hot_fraction}"
        );
        let mut by_degree: Vec<VertexId> = g.vertices().collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(g.total_degree(v)));
        let hot = &by_degree[..hot_vertices.min(by_degree.len())];
        let mut rng = StdRng::seed_from_u64(config.seed);
        let draw = |rng: &mut StdRng| {
            if rng.gen_bool(hot_fraction) {
                hot[rng.gen_range(0..hot.len())]
            } else {
                VertexId(rng.gen_range(0..n))
            }
        };
        let pairs = (0..config.queries)
            .map(|_| (draw(&mut rng), draw(&mut rng)))
            .collect();
        QueryWorkload { pairs }
    }

    /// The query pairs.
    pub fn pairs(&self) -> &[(VertexId, VertexId)] {
        &self.pairs
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Fraction of queries for which `predicate` holds (e.g. the positive
    /// rate of reachability answers, or the share of Case-4 queries).
    pub fn fraction_where(&self, mut predicate: impl FnMut(VertexId, VertexId) -> bool) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let hits = self.pairs.iter().filter(|&&(s, t)| predicate(s, t)).count();
        hits as f64 / self.pairs.len() as f64
    }

    /// Counts queries into four buckets according to `classifier`, which maps
    /// a pair to a case number 1–4 (Algorithm 2 / Table 8).
    pub fn case_distribution(
        &self,
        mut classifier: impl FnMut(VertexId, VertexId) -> u8,
    ) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for &(s, t) in &self.pairs {
            let case = classifier(s, t);
            assert!(
                (1..=4).contains(&case),
                "classifier must return 1..=4, got {case}"
            );
            counts[case as usize - 1] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreach_graph::generators::GeneratorSpec;
    use kreach_graph::DiGraph;

    fn graph() -> DiGraph {
        GeneratorSpec::ErdosRenyi { n: 50, m: 120 }.generate(1)
    }

    #[test]
    fn generates_requested_number_of_in_range_pairs() {
        let g = graph();
        let w = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 1000,
                seed: 3,
            },
        );
        assert_eq!(w.len(), 1000);
        assert!(w
            .pairs()
            .iter()
            .all(|&(s, t)| s.index() < 50 && t.index() < 50));
    }

    #[test]
    fn same_seed_same_workload_different_seed_different() {
        let g = graph();
        let a = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 500,
                seed: 7,
            },
        );
        let b = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 500,
                seed: 7,
            },
        );
        let c = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 500,
                seed: 8,
            },
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fraction_and_distribution_helpers() {
        let g = graph();
        let w = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 2000,
                seed: 5,
            },
        );
        let all = w.fraction_where(|_, _| true);
        assert!((all - 1.0).abs() < 1e-12);
        let none = w.fraction_where(|_, _| false);
        assert_eq!(none, 0.0);

        // Classify by parity of the source id: roughly half in each bucket.
        let counts = w.case_distribution(|s, _| if s.0 % 2 == 0 { 1 } else { 4 });
        assert_eq!(counts.iter().sum::<usize>(), 2000);
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[0] > 700 && counts[3] > 700);
    }

    #[test]
    fn uniform_pairs_are_spread_over_the_vertex_set() {
        let g = graph();
        let w = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 5000,
                seed: 11,
            },
        );
        let mut seen_sources = [false; 50];
        for &(s, _) in w.pairs() {
            seen_sources[s.index()] = true;
        }
        let covered = seen_sources.iter().filter(|&&b| b).count();
        assert!(
            covered >= 45,
            "uniform sampling should touch almost every vertex, got {covered}"
        );
    }

    #[test]
    fn skewed_workload_concentrates_on_hot_vertices() {
        let g = graph();
        let w = QueryWorkload::skewed(
            &g,
            WorkloadConfig {
                queries: 4000,
                seed: 13,
            },
            5,
            0.8,
        );
        assert_eq!(w.len(), 4000);
        assert!(w
            .pairs()
            .iter()
            .all(|&(s, t)| s.index() < 50 && t.index() < 50));
        // The 5 hot vertices should dominate: with hot_fraction 0.8 each
        // endpoint is hot with p = 0.8 + 0.2 * (5/50) ≈ 0.82.
        let mut counts = std::collections::HashMap::new();
        for &(s, t) in w.pairs() {
            *counts.entry(s).or_insert(0usize) += 1;
            *counts.entry(t).or_insert(0usize) += 1;
        }
        let mut by_count: Vec<usize> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top5: usize = by_count.iter().take(5).sum();
        assert!(
            top5 as f64 > 0.7 * 8000.0,
            "top-5 endpoints should absorb most draws, got {top5}/8000"
        );
        // Determinism per seed, like the uniform generator.
        let again = QueryWorkload::skewed(
            &g,
            WorkloadConfig {
                queries: 4000,
                seed: 13,
            },
            5,
            0.8,
        );
        assert_eq!(w, again);
        // hot_fraction 0 degenerates to a uniform draw over all vertices.
        let cold = QueryWorkload::skewed(
            &g,
            WorkloadConfig {
                queries: 1000,
                seed: 3,
            },
            5,
            0.0,
        );
        let distinct: std::collections::HashSet<_> = cold.pairs().iter().map(|&(s, _)| s).collect();
        assert!(distinct.len() > 30, "uniform draw should spread sources");
    }

    #[test]
    #[should_panic]
    fn skewed_rejects_zero_hot_vertices() {
        let g = graph();
        QueryWorkload::skewed(
            &g,
            WorkloadConfig {
                queries: 1,
                seed: 0,
            },
            0,
            0.5,
        );
    }

    #[test]
    #[should_panic]
    fn skewed_rejects_bad_hot_fraction() {
        let g = graph();
        QueryWorkload::skewed(
            &g,
            WorkloadConfig {
                queries: 1,
                seed: 0,
            },
            3,
            1.5,
        );
    }

    #[test]
    #[should_panic]
    fn empty_graph_is_rejected() {
        let g = DiGraph::from_edges(0, std::iter::empty());
        QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 1,
                seed: 0,
            },
        );
    }

    #[test]
    #[should_panic]
    fn classifier_out_of_range_is_rejected() {
        let g = graph();
        let w = QueryWorkload::uniform(
            &g,
            WorkloadConfig {
                queries: 10,
                seed: 0,
            },
        );
        w.case_distribution(|_, _| 7);
    }
}
