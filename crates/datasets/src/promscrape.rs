//! Prometheus text exposition parsing (version 0.0.4).
//!
//! The counterpart of `kreach-obs`'s renderer: the server renders
//! `GET /metrics` with `PromText`, and the load generator, the CI smoke
//! check, and the server's own round-trip tests parse the scrape with this
//! module — one wire schema, checked from both sides.
//!
//! The parser accepts the subset the server emits — `# HELP` / `# TYPE`
//! comment lines, and sample lines `name{labels} value` with an optional
//! OpenMetrics exemplar (`... # {trace_id="42"} 0.0015`) — and rejects
//! anything else with a line-numbered error, so a malformed exposition
//! fails a scrape loudly instead of silently dropping series. Beyond line
//! syntax it enforces two document invariants: no duplicate series (same
//! name and label set twice) and well-formed histograms (`le` buckets in
//! strictly increasing order with non-decreasing cumulative counts).

use std::collections::{HashMap, HashSet};

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order; empty for unlabeled samples.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// The sample's OpenMetrics exemplar, if one was attached.
    pub exemplar: Option<PromExemplar>,
}

/// An OpenMetrics exemplar parsed off a sample line: the label pairs
/// inside `# {...}` plus the exemplar's observed value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromExemplar {
    /// Exemplar label pairs in source order (typically `trace_id`).
    pub labels: Vec<(String, String)>,
    /// The exemplar's observed value.
    pub value: f64,
}

impl PromExemplar {
    /// The value of the exemplar label named `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl PromSample {
    /// The value of the label named `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for PromParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metrics line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PromParseError {}

/// A parsed `/metrics` document.
#[derive(Debug, Clone, Default)]
pub struct PromScrape {
    samples: Vec<PromSample>,
    types: HashMap<String, String>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Label pairs plus the unparsed remainder of a sample line.
type LabelsAndRest<'a> = (Vec<(String, String)>, &'a str);

/// Parses the `{key="value",...}` label block (`rest` starts just past the
/// opening brace); returns the pairs and the remainder after the closing
/// brace. Label values may contain `\\`, `\"`, and `\n` escapes.
fn parse_labels(rest: &str) -> Result<LabelsAndRest<'_>, String> {
    let mut labels = Vec::new();
    let mut chars = rest.char_indices().peekable();
    loop {
        // Key up to '='.
        let start = match chars.peek() {
            Some(&(i, '}')) => {
                let _ = i;
                chars.next();
                let consumed = rest.len() - chars.clone().map(|(_, c)| c.len_utf8()).sum::<usize>();
                return Ok((labels, &rest[consumed..]));
            }
            Some(&(i, _)) => i,
            None => return Err("unterminated label block".to_string()),
        };
        let mut eq = None;
        for (i, c) in chars.by_ref() {
            if c == '=' {
                eq = Some(i);
                break;
            }
        }
        let Some(eq) = eq else {
            return Err("label without '='".to_string());
        };
        let key = rest[start..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label {key} value is not quoted")),
        }
        // Quoted value with escapes.
        let mut value = String::new();
        let mut closed = false;
        while let Some((_, c)) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape after \\ in label {key}: {other:?}")),
                },
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated value for label {key}"));
        }
        labels.push((key, value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((i, '}')) => return Ok((labels, &rest[i + 1..])),
            other => {
                return Err(format!(
                    "expected ',' or '}}' after label value, got {other:?}"
                ))
            }
        }
    }
}

/// Parses one sample (or exemplar) value field, accepting the exposition
/// spellings of the special floats.
fn parse_value(field: &str) -> Result<f64, String> {
    match field {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        v => v
            .parse::<f64>()
            .map_err(|e| format!("bad value {v:?}: {e}")),
    }
}

/// Parses the exemplar text after the `# ` marker: `{labels} value`.
fn parse_exemplar(text: &str) -> Result<PromExemplar, String> {
    let rest = text
        .strip_prefix('{')
        .ok_or_else(|| format!("exemplar must start with '{{', got {text:?}"))?;
    let (labels, rest) = parse_labels(rest).map_err(|e| format!("bad exemplar labels: {e}"))?;
    let mut fields = rest.split_whitespace();
    let value_field = fields
        .next()
        .ok_or_else(|| "exemplar without a value".to_string())?;
    if fields.next().is_some() {
        return Err(format!(
            "unexpected trailing fields after exemplar {text:?}"
        ));
    }
    let value = parse_value(value_field).map_err(|e| format!("exemplar {e}"))?;
    Ok(PromExemplar { labels, value })
}

/// The identity of a series — name plus its label set, order-insensitive —
/// for duplicate detection.
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    let mut sorted: Vec<_> = labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
    sorted.sort();
    format!("{name}{{{}}}", sorted.join(","))
}

impl PromScrape {
    /// Parses a full exposition document, validating every line.
    pub fn parse(text: &str) -> Result<PromScrape, PromParseError> {
        let mut scrape = PromScrape::default();
        // Document invariants: series seen so far (duplicate rejection) and
        // per-histogram-series (last le, last cumulative count) for bucket
        // ordering.
        let mut seen: HashSet<String> = HashSet::new();
        let mut bucket_state: HashMap<String, (f64, f64)> = HashMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let fail = |message: String| PromParseError {
                line: idx + 1,
                message,
            };
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let mut parts = comment.trim_start().splitn(3, ' ');
                match parts.next() {
                    Some("HELP") => {
                        let name = parts
                            .next()
                            .ok_or_else(|| fail("HELP without metric name".into()))?;
                        if !valid_name(name) {
                            return Err(fail(format!("invalid metric name {name:?} in HELP")));
                        }
                    }
                    Some("TYPE") => {
                        let name = parts
                            .next()
                            .ok_or_else(|| fail("TYPE without metric name".into()))?;
                        let kind = parts
                            .next()
                            .ok_or_else(|| fail("TYPE without a kind".into()))?;
                        if !valid_name(name) {
                            return Err(fail(format!("invalid metric name {name:?} in TYPE")));
                        }
                        if !matches!(
                            kind,
                            "counter" | "gauge" | "histogram" | "summary" | "untyped"
                        ) {
                            return Err(fail(format!("unknown metric type {kind:?}")));
                        }
                        scrape.types.insert(name.to_string(), kind.to_string());
                    }
                    // Other comments are legal exposition; ignore them.
                    _ => {}
                }
                continue;
            }
            // Sample line: name[{labels}] value
            let name_end = line
                .find(|c: char| c == '{' || c.is_whitespace())
                .ok_or_else(|| fail("sample line without a value".into()))?;
            let name = &line[..name_end];
            if !valid_name(name) {
                return Err(fail(format!("invalid metric name {name:?}")));
            }
            let (labels, rest) = if line[name_end..].starts_with('{') {
                parse_labels(&line[name_end + 1..]).map_err(&fail)?
            } else {
                (Vec::new(), &line[name_end..])
            };
            let mut value_text = rest.trim();
            if value_text.is_empty() {
                return Err(fail(format!("sample {name} has no value")));
            }
            // An OpenMetrics exemplar may trail the value: `value # {..} v`.
            let exemplar = match value_text.split_once(" # ") {
                Some((value_part, exemplar_part)) => {
                    value_text = value_part.trim();
                    Some(parse_exemplar(exemplar_part.trim()).map_err(&fail)?)
                }
                None => None,
            };
            // Timestamps (a second field) are not in our schema.
            let mut fields = value_text.split_whitespace();
            let value_field = fields
                .next()
                .ok_or_else(|| fail(format!("sample {name} has no value")))?;
            if fields.next().is_some() {
                return Err(fail(format!("unexpected trailing fields in {line:?}")));
            }
            let value = parse_value(value_field).map_err(|e| fail(format!("{e} for {name}")))?;
            // Reject duplicate series: the same name + label set twice in
            // one document means an aggregation bug on the render side.
            if !seen.insert(series_key(name, &labels)) {
                return Err(fail(format!(
                    "duplicate series {name} (same label set seen earlier in this scrape)"
                )));
            }
            // Histogram bucket invariants: within one series, `le` must be
            // strictly increasing and cumulative counts non-decreasing.
            if name.ends_with("_bucket") {
                if let Some(le_text) = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                {
                    let le = parse_value(le_text)
                        .map_err(|e| fail(format!("bad le bucket bound: {e}")))?;
                    let others: Vec<(String, String)> =
                        labels.iter().filter(|(k, _)| k != "le").cloned().collect();
                    let key = series_key(name, &others);
                    if let Some(&(prev_le, prev_count)) = bucket_state.get(&key) {
                        if le.is_nan() || le <= prev_le {
                            return Err(fail(format!(
                                "out-of-order le buckets for {name}: {le} after {prev_le}"
                            )));
                        }
                        if value < prev_count {
                            return Err(fail(format!(
                                "non-cumulative bucket counts for {name}: {value} after {prev_count}"
                            )));
                        }
                    }
                    bucket_state.insert(key, (le, value));
                }
            }
            scrape.samples.push(PromSample {
                name: name.to_string(),
                labels,
                value,
                exemplar,
            });
        }
        Ok(scrape)
    }

    /// Every parsed sample, in document order.
    pub fn samples(&self) -> &[PromSample] {
        &self.samples
    }

    /// The declared `# TYPE` of a metric family, if any.
    pub fn type_of(&self, name: &str) -> Option<&str> {
        self.types.get(name).map(String::as_str)
    }

    /// The value of an unlabeled (or single-series) sample, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
    }

    /// The value of the series of `name` whose label `key` equals `value`.
    pub fn labeled(&self, name: &str, key: &str, value: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.label(key) == Some(value))
            .map(|s| s.value)
    }

    /// Every sample of one family, in document order (empty when absent).
    pub fn samples_of(&self, name: &str) -> Vec<&PromSample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// Sum of every series of `name` (0.0 when the family is absent).
    pub fn sum_of(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# HELP kreach_queries_total Queries answered.
# TYPE kreach_queries_total counter
kreach_queries_total 42
# HELP kreach_engine_queries_by_case_total Served queries by case.
# TYPE kreach_engine_queries_by_case_total counter
kreach_engine_queries_by_case_total{case=\"case1\"} 30
kreach_engine_queries_by_case_total{case=\"case4\"} 12
# TYPE kreach_request_duration_seconds histogram
kreach_request_duration_seconds_bucket{le=\"0.000001\"} 7
kreach_request_duration_seconds_bucket{le=\"+Inf\"} 9
kreach_request_duration_seconds_sum 0.001
kreach_request_duration_seconds_count 9
# TYPE kreach_uptime_seconds gauge
kreach_uptime_seconds 1.5
";

    #[test]
    fn parses_counters_gauges_and_histograms() {
        let scrape = PromScrape::parse(DOC).unwrap();
        assert_eq!(scrape.value("kreach_queries_total"), Some(42.0));
        assert_eq!(scrape.type_of("kreach_queries_total"), Some("counter"));
        assert_eq!(
            scrape.labeled("kreach_engine_queries_by_case_total", "case", "case1"),
            Some(30.0)
        );
        assert_eq!(scrape.sum_of("kreach_engine_queries_by_case_total"), 42.0);
        assert_eq!(
            scrape.labeled("kreach_request_duration_seconds_bucket", "le", "+Inf"),
            Some(9.0)
        );
        assert_eq!(
            scrape.value("kreach_request_duration_seconds_count"),
            Some(9.0)
        );
        assert_eq!(scrape.value("kreach_uptime_seconds"), Some(1.5));
        assert_eq!(scrape.value("kreach_missing"), None);
        assert_eq!(scrape.sum_of("kreach_missing"), 0.0);
    }

    #[test]
    fn label_escapes_round_trip() {
        let doc = "m{a=\"say \\\"hi\\\"\",b=\"back\\\\slash\"} 1\n";
        let scrape = PromScrape::parse(doc).unwrap();
        let sample = &scrape.samples()[0];
        assert_eq!(sample.label("a"), Some("say \"hi\""));
        assert_eq!(sample.label("b"), Some("back\\slash"));
    }

    #[test]
    fn special_values_parse() {
        let scrape = PromScrape::parse("a +Inf\nb -Inf\nc NaN\nd 1e-9\n").unwrap();
        assert_eq!(scrape.value("a"), Some(f64::INFINITY));
        assert_eq!(scrape.value("b"), Some(f64::NEG_INFINITY));
        assert!(scrape.value("c").unwrap().is_nan());
        assert_eq!(scrape.value("d"), Some(1e-9));
    }

    #[test]
    fn malformed_lines_fail_with_line_numbers() {
        for (doc, needle) in [
            ("ok 1\n9bad 2\n", "invalid metric name"),
            ("m{x=1} 2\n", "not quoted"),
            ("m{x=\"unterminated} 2\n", "unterminated"),
            ("m{x=\"v\"\n", "expected ',' or '}'"),
            ("m\n", "without a value"),
            ("m zebra\n", "bad value"),
            ("m 1 1700000000\n", "trailing fields"),
            ("# TYPE m wat\n", "unknown metric type"),
        ] {
            let err = PromScrape::parse(doc).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{doc:?} → {err} (wanted {needle:?})"
            );
            assert!(err.to_string().contains("metrics line"), "{err}");
        }
        // The error names the right line.
        let err = PromScrape::parse("ok 1\nok2 2\nbroken\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn exemplars_parse_and_round_trip_their_labels() {
        let doc = "\
# TYPE kreach_request_duration_seconds histogram
kreach_request_duration_seconds_bucket{le=\"0.001\"} 5 # {trace_id=\"42\"} 0.0009
kreach_request_duration_seconds_bucket{le=\"+Inf\"} 6
kreach_request_duration_seconds_sum 0.004
kreach_request_duration_seconds_count 6
";
        let scrape = PromScrape::parse(doc).unwrap();
        let bucket = scrape
            .samples()
            .iter()
            .find(|s| s.name.ends_with("_bucket") && s.label("le") == Some("0.001"))
            .expect("exemplar bucket");
        let exemplar = bucket.exemplar.as_ref().expect("exemplar parsed");
        assert_eq!(exemplar.label("trace_id"), Some("42"));
        assert_eq!(exemplar.value, 0.0009);
        // The other bucket has no exemplar.
        let inf = scrape
            .samples()
            .iter()
            .find(|s| s.name.ends_with("_bucket") && s.label("le") == Some("+Inf"))
            .unwrap();
        assert!(inf.exemplar.is_none());
    }

    #[test]
    fn malformed_exemplars_are_rejected() {
        for (doc, needle) in [
            (
                "m_bucket{le=\"1\"} 2 # trace_id=\"x\" 1\n",
                "start with '{'",
            ),
            (
                "m_bucket{le=\"1\"} 2 # {trace_id=\"x\"}\n",
                "without a value",
            ),
            (
                "m_bucket{le=\"1\"} 2 # {trace_id=\"x\"} zebra\n",
                "bad value",
            ),
            (
                "m_bucket{le=\"1\"} 2 # {trace_id=\"x\"} 1 2\n",
                "trailing fields",
            ),
            ("m_bucket{le=\"1\"} 2 # {oops} 1\n", "exemplar labels"),
        ] {
            let err = PromScrape::parse(doc).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{doc:?} → {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn duplicate_series_are_a_parse_error() {
        let err = PromScrape::parse("dup 1\ndup 2\n").unwrap_err();
        assert!(err.message.contains("duplicate series"), "{err}");
        assert_eq!(err.line, 2);
        // Same name with a different label set is legal...
        let doc = "m{case=\"a\"} 1\nm{case=\"b\"} 2\n";
        assert!(PromScrape::parse(doc).is_ok());
        // ...but repeating a label set is not, even reordered.
        let doc = "m{a=\"1\",b=\"2\"} 1\nm{b=\"2\",a=\"1\"} 2\n";
        let err = PromScrape::parse(doc).unwrap_err();
        assert!(err.message.contains("duplicate series"), "{err}");
    }

    #[test]
    fn histogram_bucket_invariants_are_enforced() {
        // Out-of-order le.
        let doc = "\
h_bucket{le=\"0.01\"} 3
h_bucket{le=\"0.001\"} 1
";
        let err = PromScrape::parse(doc).unwrap_err();
        assert!(err.message.contains("out-of-order le"), "{err}");
        assert_eq!(err.line, 2);
        // A repeated le is caught by the duplicate-series check first.
        let err = PromScrape::parse("h_bucket{le=\"1\"} 1\nh_bucket{le=\"1\"} 1\n").unwrap_err();
        assert!(err.message.contains("duplicate series"), "{err}");
        assert_eq!(err.line, 2);
        // Shrinking cumulative counts.
        let doc = "\
h_bucket{le=\"0.001\"} 5
h_bucket{le=\"+Inf\"} 3
";
        let err = PromScrape::parse(doc).unwrap_err();
        assert!(err.message.contains("non-cumulative"), "{err}");
        // NaN is not a valid bucket bound position.
        let doc = "\
h_bucket{le=\"0.001\"} 1
h_bucket{le=\"NaN\"} 2
";
        let err = PromScrape::parse(doc).unwrap_err();
        assert!(err.message.contains("out-of-order le"), "{err}");
        // Distinct series (different non-le labels) are tracked apart, and
        // +Inf closes each one legally.
        let doc = "\
h_bucket{case=\"a\",le=\"0.001\"} 1
h_bucket{case=\"b\",le=\"0.001\"} 7
h_bucket{case=\"a\",le=\"+Inf\"} 2
h_bucket{case=\"b\",le=\"+Inf\"} 7
";
        assert!(PromScrape::parse(doc).is_ok(), "{doc}");
    }
}
