//! The 15 datasets of Table 2 and their synthetic stand-ins.

use kreach_graph::generators::GeneratorSpec;
use kreach_graph::DiGraph;

/// Broad structural family of a dataset, used to pick a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetFamily {
    /// Genome / metabolic networks (EcoCyc family, aMaze, Kegg): very sparse,
    /// one huge hub, shallow, substantial SCC collapse.
    Metabolic,
    /// Citation networks (ArXiv, CiteSeer, PubMed): denser, acyclic, deeper.
    Citation,
    /// XML / ontology graphs (Nasa, Xmark, GO, YAGO): sparse, mostly acyclic,
    /// tree-like with moderate depth.
    Hierarchy,
}

/// Published statistics of one dataset (a row of Table 2) plus the synthetic
/// generator used to stand in for it.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Structural family.
    pub family: DatasetFamily,
    /// `|V|` from Table 2.
    pub vertices: usize,
    /// `|E|` from Table 2.
    pub edges: usize,
    /// `|V_DAG|` from Table 2.
    pub dag_vertices: usize,
    /// `|E_DAG|` from Table 2.
    pub dag_edges: usize,
    /// `Degmax` from Table 2.
    pub max_degree: usize,
    /// Diameter `d` from Table 2.
    pub diameter: u32,
    /// Median shortest-path length `µ` from Table 2.
    pub median_shortest_path: u32,
}

impl DatasetSpec {
    /// The generator parameters chosen to reproduce this dataset's shape.
    pub fn generator(&self) -> GeneratorSpec {
        match self.family {
            // The metabolic/genome graphs are forests of overlapping stars: a
            // vertex cover of a few hundred vertices covers every edge and
            // the largest hub touches a sizeable fraction of |V| (Table 2's
            // Degmax, Table 9's cover sizes). The hub-forest generator
            // reproduces that; the hub count is ~3% of |V|, matching the
            // published cover sizes.
            DatasetFamily::Metabolic => GeneratorSpec::HubForest {
                n: self.vertices,
                m: self.edges,
                hubs: (self.vertices / 34).max(2),
            },
            // Citation graphs are deeper and denser: a layered DAG with a few
            // forward-jumping edges and essentially no back edges (they are
            // already acyclic in Table 2: |V_DAG| == |V|).
            DatasetFamily::Citation => GeneratorSpec::LayeredDag {
                n: self.vertices,
                m: self.edges,
                layers: self.diameter as usize,
                back_edge_fraction: 0.0,
            },
            // XML/ontology graphs: sparse layered structure with a small
            // fraction of back edges, so a modest number of vertices collapse
            // into SCCs, as Table 2 reports.
            DatasetFamily::Hierarchy => GeneratorSpec::LayeredDag {
                n: self.vertices,
                m: self.edges,
                layers: self.diameter as usize,
                back_edge_fraction: back_edge_fraction(self.vertices, self.dag_vertices),
            },
        }
    }

    /// Generates the synthetic stand-in graph (deterministic per seed).
    pub fn generate(&self, seed: u64) -> DiGraph {
        self.generator().generate(seed ^ fxhash(self.name))
    }

    /// The dataset scaled down by `factor` (≥ 1), for quick smoke runs of the
    /// benchmark harness. `factor == 1` returns the full-size spec.
    pub fn scaled(&self, factor: usize) -> DatasetSpec {
        let factor = factor.max(1);
        DatasetSpec {
            vertices: (self.vertices / factor).max(16),
            edges: (self.edges / factor).max(32),
            dag_vertices: (self.dag_vertices / factor).max(16),
            dag_edges: (self.dag_edges / factor).max(16),
            ..self.clone()
        }
    }
}

/// Fraction of back edges chosen so the generated graph collapses roughly as
/// much as the real one did (`1 - |V_DAG| / |V|`).
fn back_edge_fraction(vertices: usize, dag_vertices: usize) -> f64 {
    if vertices == 0 {
        return 0.0;
    }
    let collapse = 1.0 - dag_vertices as f64 / vertices as f64;
    (collapse * 0.6).clamp(0.0, 0.5)
}

/// Deterministic name hash so different datasets get different seeds.
fn fxhash(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// All 15 rows of Table 2.
pub fn all_specs() -> Vec<DatasetSpec> {
    use DatasetFamily::*;
    vec![
        DatasetSpec {
            name: "AgroCyc",
            family: Metabolic,
            vertices: 13_969,
            edges: 17_694,
            dag_vertices: 12_684,
            dag_edges: 13_657,
            max_degree: 5_488,
            diameter: 10,
            median_shortest_path: 2,
        },
        DatasetSpec {
            name: "aMaze",
            family: Metabolic,
            vertices: 11_877,
            edges: 28_700,
            dag_vertices: 3_710,
            dag_edges: 3_947,
            max_degree: 3_097,
            diameter: 11,
            median_shortest_path: 2,
        },
        DatasetSpec {
            name: "Anthra",
            family: Metabolic,
            vertices: 13_766,
            edges: 17_307,
            dag_vertices: 12_499,
            dag_edges: 13_327,
            max_degree: 5_401,
            diameter: 10,
            median_shortest_path: 2,
        },
        DatasetSpec {
            name: "ArXiv",
            family: Citation,
            vertices: 6_000,
            edges: 66_707,
            dag_vertices: 6_000,
            dag_edges: 66_707,
            max_degree: 700,
            diameter: 20,
            median_shortest_path: 4,
        },
        DatasetSpec {
            name: "CiteSeer",
            family: Citation,
            vertices: 10_720,
            edges: 44_258,
            dag_vertices: 10_720,
            dag_edges: 44_258,
            max_degree: 192,
            diameter: 18,
            median_shortest_path: 3,
        },
        DatasetSpec {
            name: "Ecoo",
            family: Metabolic,
            vertices: 13_800,
            edges: 17_308,
            dag_vertices: 12_620,
            dag_edges: 13_575,
            max_degree: 5_435,
            diameter: 10,
            median_shortest_path: 2,
        },
        DatasetSpec {
            name: "GO",
            family: Hierarchy,
            vertices: 6_793,
            edges: 13_361,
            dag_vertices: 6_793,
            dag_edges: 13_361,
            max_degree: 71,
            diameter: 11,
            median_shortest_path: 3,
        },
        DatasetSpec {
            name: "Human",
            family: Metabolic,
            vertices: 40_051,
            edges: 43_879,
            dag_vertices: 38_811,
            dag_edges: 39_816,
            max_degree: 28_571,
            diameter: 10,
            median_shortest_path: 2,
        },
        DatasetSpec {
            name: "Kegg",
            family: Metabolic,
            vertices: 14_271,
            edges: 35_170,
            dag_vertices: 3_617,
            dag_edges: 4_395,
            max_degree: 3_282,
            diameter: 16,
            median_shortest_path: 2,
        },
        DatasetSpec {
            name: "Mtbrv",
            family: Metabolic,
            vertices: 10_697,
            edges: 13_922,
            dag_vertices: 9_602,
            dag_edges: 10_438,
            max_degree: 4_005,
            diameter: 12,
            median_shortest_path: 2,
        },
        DatasetSpec {
            name: "Nasa",
            family: Hierarchy,
            vertices: 5_704,
            edges: 7_942,
            dag_vertices: 5_605,
            dag_edges: 6_538,
            max_degree: 32,
            diameter: 22,
            median_shortest_path: 7,
        },
        DatasetSpec {
            name: "PubMed",
            family: Citation,
            vertices: 9_000,
            edges: 40_028,
            dag_vertices: 9_000,
            dag_edges: 40_028,
            max_degree: 432,
            diameter: 11,
            median_shortest_path: 4,
        },
        DatasetSpec {
            name: "Vchocyc",
            family: Metabolic,
            vertices: 10_694,
            edges: 14_207,
            dag_vertices: 9_491,
            dag_edges: 10_345,
            max_degree: 3_917,
            diameter: 10,
            median_shortest_path: 2,
        },
        DatasetSpec {
            name: "Xmark",
            family: Hierarchy,
            vertices: 6_483,
            edges: 7_654,
            dag_vertices: 6_080,
            dag_edges: 7_051,
            max_degree: 887,
            diameter: 24,
            median_shortest_path: 5,
        },
        DatasetSpec {
            name: "YAGO",
            family: Hierarchy,
            vertices: 6_642,
            edges: 42_392,
            dag_vertices: 6_642,
            dag_edges: 42_392,
            max_degree: 2_371,
            diameter: 9,
            median_shortest_path: 1,
        },
    ]
}

/// Looks up a dataset spec by (case-insensitive) name.
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    all_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreach_graph::metrics::{graph_stats, StatsConfig};

    #[test]
    fn there_are_fifteen_datasets_with_unique_names() {
        let specs = all_specs();
        assert_eq!(specs.len(), 15);
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(spec_by_name("arxiv").unwrap().name, "ArXiv");
        assert_eq!(spec_by_name("HUMAN").unwrap().name, "Human");
        assert!(spec_by_name("nonexistent").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = spec_by_name("GO").unwrap().scaled(8);
        assert_eq!(spec.generate(1), spec.generate(1));
    }

    #[test]
    fn scaled_specs_shrink_but_keep_structure() {
        let spec = spec_by_name("Human").unwrap();
        let small = spec.scaled(20);
        assert!(small.vertices <= spec.vertices / 20 + 16);
        assert_eq!(small.family, spec.family);
        assert_eq!(small.name, spec.name);
        assert_eq!(spec.scaled(1).vertices, spec.vertices);
    }

    #[test]
    fn generated_sizes_track_the_published_sizes() {
        // Spot-check three families at reduced scale to keep the test fast.
        for name in ["AgroCyc", "CiteSeer", "Xmark"] {
            let spec = spec_by_name(name).unwrap().scaled(10);
            let g = spec.generate(7);
            assert_eq!(g.vertex_count(), spec.vertices, "{name}: |V|");
            let lo = (spec.edges as f64 * 0.7) as usize;
            assert!(
                g.edge_count() >= lo && g.edge_count() <= spec.edges,
                "{name}: |E| = {} not within [{lo}, {}]",
                g.edge_count(),
                spec.edges
            );
        }
    }

    #[test]
    fn citation_standins_are_acyclic_and_metabolic_ones_are_not() {
        let citation = spec_by_name("PubMed").unwrap().scaled(10).generate(3);
        assert!(kreach_graph::traversal::topological_sort(&citation).is_some());

        let metabolic = spec_by_name("Kegg").unwrap().scaled(10);
        let g = metabolic.generate(3);
        let stats = graph_stats(&g, StatsConfig::default());
        assert!(
            stats.dag_vertices < stats.vertices,
            "metabolic graphs must have non-trivial SCCs ({} vs {})",
            stats.dag_vertices,
            stats.vertices
        );
    }

    #[test]
    fn hub_degree_is_skewed_for_metabolic_family() {
        let spec = spec_by_name("AgroCyc").unwrap().scaled(10);
        let g = spec.generate(5);
        let avg = 2.0 * g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(
            g.max_degree() as f64 > 20.0 * avg,
            "max degree {} should dwarf the average {avg:.1}",
            g.max_degree()
        );
    }
}
