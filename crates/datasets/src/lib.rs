//! # kreach-datasets
//!
//! Synthetic stand-ins for the 15 real graphs of the K-Reach evaluation
//! (Table 2 of the paper) and the query workloads of Section 6.
//!
//! The original files (EcoCyc genome graphs, aMaze/Kegg metabolic networks,
//! Nasa/Xmark XML documents, ArXiv/CiteSeer/PubMed citation networks, GO and
//! YAGO ontology graphs) are not redistributable, so every dataset is
//! replaced by a generated graph whose *shape* matches the published
//! statistics: vertex and edge counts are taken directly from Table 2, and
//! the generator family is chosen so that degree skew, cyclicity (|V_DAG|
//! versus |V|) and the distance profile (diameter `d`, median shortest-path
//! length `µ`) land in the same regime. [`DatasetSpec`] records both the
//! published numbers and the generator used, so benchmark output can always
//! be compared against the paper's tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod promscrape;
pub mod registry;
pub mod workload;
pub mod workload_file;

pub use promscrape::{PromParseError, PromSample, PromScrape};
pub use registry::{all_specs, spec_by_name, DatasetFamily, DatasetSpec};
pub use workload::{QueryWorkload, WorkloadConfig};
pub use workload_file::{
    parse_answer_line, read_update_workload, read_update_workload_file, read_workload,
    read_workload_file, render_answer_line, render_answer_lines, render_update_ack,
    write_update_workload_file, write_workload_file, UpdateOp, WorkloadEntry, WorkloadFileError,
};
