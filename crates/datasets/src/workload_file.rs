//! Plain-text query workload files.
//!
//! The serving engine consumes query workloads from disk so that one
//! generated workload can be replayed bit-for-bit against different indexes,
//! worker counts and cache settings. The format mirrors the edge-list style
//! of [`kreach_graph::io`]: one query per line, whitespace-separated,
//!
//! ```text
//! # source target [k]
//! 17 4023
//! 17 4023 6
//! ```
//!
//! with `#`-comments and blank lines ignored. The third column is an
//! optional per-query hop bound; queries without one take the caller's
//! default (usually the `k` the served index was built for).

use kreach_graph::VertexId;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A parsed workload line: source, target, optional per-query hop bound.
pub type WorkloadEntry = (VertexId, VertexId, Option<u32>);

/// Errors produced while reading a workload file.
#[derive(Debug)]
pub enum WorkloadFileError {
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for WorkloadFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadFileError::Parse { line, message } => {
                write!(f, "workload parse error on line {line}: {message}")
            }
            WorkloadFileError::Io(e) => write!(f, "workload i/o error: {e}"),
        }
    }
}

impl std::error::Error for WorkloadFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WorkloadFileError {
    fn from(e: std::io::Error) -> Self {
        WorkloadFileError::Io(e)
    }
}

/// Reads a workload from any reader.
pub fn read_workload<R: Read>(reader: R) -> Result<Vec<WorkloadEntry>, WorkloadFileError> {
    let mut entries = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let text = line.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut fields = text.split_whitespace();
        let entry = parse_query_fields(&mut fields, line_no)?;
        reject_trailing(&mut fields, line_no)?;
        entries.push(entry);
    }
    Ok(entries)
}

/// Parses the `s t [k]` tail shared by plain and mixed workload lines.
fn parse_query_fields<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
) -> Result<WorkloadEntry, WorkloadFileError> {
    let s = parse_field(fields.next(), "source", line_no)?;
    let t = parse_field(fields.next(), "target", line_no)?;
    let k = match fields.next() {
        None => None,
        Some(raw) => Some(raw.parse::<u32>().map_err(|e| WorkloadFileError::Parse {
            line: line_no,
            message: format!("invalid k {raw:?}: {e}"),
        })?),
    };
    Ok((VertexId(s), VertexId(t), k))
}

/// Errors if the line has unparsed fields left.
fn reject_trailing<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
) -> Result<(), WorkloadFileError> {
    match fields.next() {
        None => Ok(()),
        Some(extra) => Err(WorkloadFileError::Parse {
            line: line_no,
            message: format!("unexpected trailing field {extra:?}"),
        }),
    }
}

fn parse_field(raw: Option<&str>, what: &str, line: usize) -> Result<u32, WorkloadFileError> {
    let raw = raw.ok_or_else(|| WorkloadFileError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    raw.parse::<u32>().map_err(|e| WorkloadFileError::Parse {
        line,
        message: format!("invalid {what} {raw:?}: {e}"),
    })
}

/// Reads a workload file from disk.
pub fn read_workload_file(path: impl AsRef<Path>) -> Result<Vec<WorkloadEntry>, WorkloadFileError> {
    read_workload(File::open(path)?)
}

/// Writes query pairs to any writer, one per line, with an optional shared
/// hop bound as the third column.
pub fn write_workload<W: Write>(
    pairs: &[(VertexId, VertexId)],
    k: Option<u32>,
    writer: W,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for &(s, t) in pairs {
        match k {
            Some(k) => writeln!(w, "{} {} {}", s.0, t.0, k)?,
            None => writeln!(w, "{} {}", s.0, t.0)?,
        }
    }
    w.flush()
}

/// Writes query pairs to a file on disk.
pub fn write_workload_file(
    pairs: &[(VertexId, VertexId)],
    k: Option<u32>,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    write_workload(pairs, k, File::create(path)?)
}

/// One line of a mixed query/mutation ("update") workload.
///
/// The file format extends the plain query format with mutation lines:
///
/// ```text
/// 17 4023 3      # query: s t [k]
/// q 17 4023 3    # query, explicit form
/// + 17 9000      # insert edge (17, 9000)
/// - 17 4023      # remove edge (17, 4023)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// A reachability query `s →k t` (k optional, caller default applies).
    Query {
        /// Source vertex.
        s: VertexId,
        /// Target vertex.
        t: VertexId,
        /// Optional per-query hop bound.
        k: Option<u32>,
    },
    /// Insert the directed edge `(u, v)`.
    Insert {
        /// Edge source.
        u: VertexId,
        /// Edge target.
        v: VertexId,
    },
    /// Remove the directed edge `(u, v)`.
    Remove {
        /// Edge source.
        u: VertexId,
        /// Edge target.
        v: VertexId,
    },
}

/// Reads a mixed query/mutation workload from any reader.
pub fn read_update_workload<R: Read>(reader: R) -> Result<Vec<UpdateOp>, WorkloadFileError> {
    let mut ops = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let text = line.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut fields = text.split_whitespace().peekable();
        let op = match fields.peek().copied() {
            Some("+") | Some("-") => {
                let marker = fields.next().expect("peeked");
                let u = VertexId(parse_field(fields.next(), "edge source", line_no)?);
                let v = VertexId(parse_field(fields.next(), "edge target", line_no)?);
                if marker == "+" {
                    UpdateOp::Insert { u, v }
                } else {
                    UpdateOp::Remove { u, v }
                }
            }
            other => {
                if other == Some("q") {
                    fields.next();
                }
                let (s, t, k) = parse_query_fields(&mut fields, line_no)?;
                UpdateOp::Query { s, t, k }
            }
        };
        reject_trailing(&mut fields, line_no)?;
        ops.push(op);
    }
    Ok(ops)
}

/// Reads a mixed query/mutation workload file from disk.
pub fn read_update_workload_file(
    path: impl AsRef<Path>,
) -> Result<Vec<UpdateOp>, WorkloadFileError> {
    read_update_workload(File::open(path)?)
}

/// Writes a mixed query/mutation workload to any writer.
pub fn write_update_workload<W: Write>(ops: &[UpdateOp], writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for op in ops {
        match *op {
            UpdateOp::Query { s, t, k: Some(k) } => writeln!(w, "{} {} {}", s.0, t.0, k)?,
            UpdateOp::Query { s, t, k: None } => writeln!(w, "{} {}", s.0, t.0)?,
            UpdateOp::Insert { u, v } => writeln!(w, "+ {} {}", u.0, v.0)?,
            UpdateOp::Remove { u, v } => writeln!(w, "- {} {}", u.0, v.0)?,
        }
    }
    w.flush()
}

/// Writes a mixed query/mutation workload to a file on disk.
pub fn write_update_workload_file(ops: &[UpdateOp], path: impl AsRef<Path>) -> std::io::Result<()> {
    write_update_workload(ops, File::create(path)?)
}

/// Renders one answered query in the canonical response format:
///
/// ```text
/// 17 4023 3 reachable
/// ```
///
/// This is the single source of truth for the *response* side of the wire
/// format: `kreach batch`, `kreach update`, and the network server all emit
/// exactly these lines, which is what lets the integration tests assert that
/// answers served over a socket are byte-identical to the offline workload
/// path.
pub fn render_answer_line(s: VertexId, t: VertexId, k: u32, reachable: bool) -> String {
    format!(
        "{} {} {} {}",
        s.0,
        t.0,
        k,
        if reachable {
            "reachable"
        } else {
            "unreachable"
        }
    )
}

/// Renders one mutation acknowledgement in the canonical response format:
///
/// ```text
/// + 17 9000 applied epoch=3
/// - 17 4023 noop epoch=3
/// ```
pub fn render_update_ack(
    insert: bool,
    u: VertexId,
    v: VertexId,
    applied: bool,
    epoch: u64,
) -> String {
    format!(
        "{} {} {} {} epoch={}",
        if insert { "+" } else { "-" },
        u.0,
        v.0,
        if applied { "applied" } else { "noop" },
        epoch
    )
}

/// Renders a whole answered batch: one [`render_answer_line`] per query,
/// newline-terminated, in iteration order.
///
/// This is the single loop behind `kreach batch`, `kreach update`, and the
/// network server's `/batch` and `/update` bodies — keeping it in one place
/// is what makes "network answers are byte-identical to the offline path" a
/// structural guarantee rather than a convention.
pub fn render_answer_lines(
    answered: impl IntoIterator<Item = (VertexId, VertexId, u32, bool)>,
) -> String {
    let mut out = String::new();
    for (s, t, k, reachable) in answered {
        out.push_str(&render_answer_line(s, t, k, reachable));
        out.push('\n');
    }
    out
}

/// Parses one canonical answer line back into `(s, t, k, reachable)`.
///
/// The inverse of [`render_answer_line`]; clients (the `net_throughput`
/// loadgen, tests) use it to validate server responses.
pub fn parse_answer_line(
    line: &str,
    line_no: usize,
) -> Result<(VertexId, VertexId, u32, bool), WorkloadFileError> {
    let mut fields = line.split_whitespace();
    let s = parse_field(fields.next(), "source", line_no)?;
    let t = parse_field(fields.next(), "target", line_no)?;
    let k = parse_field(fields.next(), "k", line_no)?;
    let verdict = fields.next().ok_or_else(|| WorkloadFileError::Parse {
        line: line_no,
        message: "missing verdict".to_string(),
    })?;
    let reachable = match verdict {
        "reachable" => true,
        "unreachable" => false,
        other => {
            return Err(WorkloadFileError::Parse {
                line: line_no,
                message: format!("invalid verdict {other:?}"),
            })
        }
    };
    reject_trailing(&mut fields, line_no)?;
    Ok((VertexId(s), VertexId(t), k, reachable))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_pairs_without_k() {
        let pairs = vec![(VertexId(1), VertexId(2)), (VertexId(30), VertexId(0))];
        let mut buf = Vec::new();
        write_workload(&pairs, None, &mut buf).unwrap();
        let entries = read_workload(buf.as_slice()).unwrap();
        assert_eq!(
            entries,
            vec![
                (VertexId(1), VertexId(2), None),
                (VertexId(30), VertexId(0), None)
            ]
        );
    }

    #[test]
    fn round_trips_pairs_with_shared_k() {
        let pairs = vec![(VertexId(5), VertexId(6))];
        let mut buf = Vec::new();
        write_workload(&pairs, Some(4), &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf.clone()).unwrap(), "5 6 4\n");
        let entries = read_workload(buf.as_slice()).unwrap();
        assert_eq!(entries, vec![(VertexId(5), VertexId(6), Some(4))]);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# a workload\n\n1 2\n   # indented comment\n3 4 5   # trailing\n";
        let entries = read_workload(text.as_bytes()).unwrap();
        assert_eq!(
            entries,
            vec![
                (VertexId(1), VertexId(2), None),
                (VertexId(3), VertexId(4), Some(5))
            ]
        );
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("1\n", "missing target"),
            ("x 2\n", "invalid source"),
            ("1 y\n", "invalid target"),
            ("1 2 z\n", "invalid k"),
            ("1 2 3 4\n", "trailing"),
        ] {
            let err = read_workload(text.as_bytes()).unwrap_err();
            let message = err.to_string();
            assert!(message.contains("line 1"), "{text:?}: {message}");
            assert!(message.contains(needle), "{text:?}: {message}");
        }
        let err = read_workload("1 2\n\nbad\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn update_workload_round_trips_all_op_kinds() {
        let ops = vec![
            UpdateOp::Query {
                s: VertexId(1),
                t: VertexId(2),
                k: Some(3),
            },
            UpdateOp::Insert {
                u: VertexId(4),
                v: VertexId(5),
            },
            UpdateOp::Query {
                s: VertexId(1),
                t: VertexId(2),
                k: None,
            },
            UpdateOp::Remove {
                u: VertexId(4),
                v: VertexId(5),
            },
        ];
        let mut buf = Vec::new();
        write_update_workload(&ops, &mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf.clone()).unwrap(),
            "1 2 3\n+ 4 5\n1 2\n- 4 5\n"
        );
        assert_eq!(read_update_workload(buf.as_slice()).unwrap(), ops);
    }

    #[test]
    fn update_workload_accepts_explicit_q_prefix_and_comments() {
        let text = "# mixed workload\nq 7 8 2\n+ 1 2  # open a path\n- 3 4\n9 10\n";
        let ops = read_update_workload(text.as_bytes()).unwrap();
        assert_eq!(ops.len(), 4);
        assert_eq!(
            ops[0],
            UpdateOp::Query {
                s: VertexId(7),
                t: VertexId(8),
                k: Some(2)
            }
        );
        assert_eq!(
            ops[1],
            UpdateOp::Insert {
                u: VertexId(1),
                v: VertexId(2)
            }
        );
    }

    #[test]
    fn update_workload_rejects_malformed_lines() {
        for (text, needle) in [
            ("+\n", "missing edge source"),
            ("+ 1\n", "missing edge target"),
            ("- 1 x\n", "invalid edge target"),
            ("+ 1 2 3\n", "trailing"),
            ("q 1\n", "missing target"),
            ("q 1 2 3 4\n", "trailing"),
        ] {
            let err = read_update_workload(text.as_bytes()).unwrap_err();
            let message = err.to_string();
            assert!(message.contains("line 1"), "{text:?}: {message}");
            assert!(message.contains(needle), "{text:?}: {message}");
        }
    }

    #[test]
    fn answer_lines_render_and_parse_round_trip() {
        let line = render_answer_line(VertexId(17), VertexId(4023), 3, true);
        assert_eq!(line, "17 4023 3 reachable");
        assert_eq!(
            parse_answer_line(&line, 1).unwrap(),
            (VertexId(17), VertexId(4023), 3, true)
        );
        let line = render_answer_line(VertexId(0), VertexId(9), 2, false);
        assert_eq!(line, "0 9 2 unreachable");
        assert_eq!(
            parse_answer_line(&line, 5).unwrap(),
            (VertexId(0), VertexId(9), 2, false)
        );
    }

    #[test]
    fn answer_line_parse_rejects_malformed_input() {
        for (text, needle) in [
            ("", "missing source"),
            ("1 2", "missing k"),
            ("1 2 3", "missing verdict"),
            ("1 2 3 maybe", "invalid verdict"),
            ("1 2 3 reachable extra", "trailing"),
            ("x 2 3 reachable", "invalid source"),
        ] {
            let err = parse_answer_line(text, 7).unwrap_err();
            let message = err.to_string();
            assert!(message.contains("line 7"), "{text:?}: {message}");
            assert!(message.contains(needle), "{text:?}: {message}");
        }
    }

    #[test]
    fn update_acks_render_both_arms() {
        assert_eq!(
            render_update_ack(true, VertexId(17), VertexId(9000), true, 3),
            "+ 17 9000 applied epoch=3"
        );
        assert_eq!(
            render_update_ack(false, VertexId(17), VertexId(4023), false, 3),
            "- 17 4023 noop epoch=3"
        );
    }

    #[test]
    fn file_round_trip() {
        // Unique per process so parallel test runs never race on the path.
        let dir =
            std::env::temp_dir().join(format!("kreach-workload-file-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.txt");
        let pairs = vec![(VertexId(9), VertexId(8))];
        write_workload_file(&pairs, Some(2), &path).unwrap();
        let entries = read_workload_file(&path).unwrap();
        assert_eq!(entries, vec![(VertexId(9), VertexId(8), Some(2))]);
        std::fs::remove_file(&path).ok();
    }
}
