//! `kreach` — a small command-line front end to the library.
//!
//! Subcommands:
//!
//! * `kreach stats <edge-list>` — print the Table-2-style statistics of a graph.
//! * `kreach generate <dataset> --output <file> [--scale F] [--seed S]` —
//!   write a synthetic stand-in for one of the paper's datasets as an edge list.
//! * `kreach build <edge-list> --k <K> --output <index-file> [--cover random|degree]`
//!   — build a k-reach index and store it on disk.
//! * `kreach query <index-file> <edge-list> <s> <t>` — load an index and
//!   answer `s →k t`, printing the certificate returned by
//!   [`kreach::core::kreach::KReachIndex::explain`].

use kreach::core::kreach::QueryWitness;
use kreach::core::storage;
use kreach::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

/// Dispatches a command line to its subcommand, returning the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        Some("stats") => cmd_stats(&collect_rest(args)),
        Some("generate") => cmd_generate(&collect_rest(args)),
        Some("build") => cmd_build(&collect_rest(args)),
        Some("query") => cmd_query(&collect_rest(args)),
        Some("--help") | Some("-h") | None => Ok(usage().to_string()),
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn collect_rest<'a>(rest: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    rest.collect()
}

fn usage() -> &'static str {
    "usage:\n\
     \x20 kreach stats <edge-list>\n\
     \x20 kreach generate <dataset> --output <file> [--scale F] [--seed S]\n\
     \x20 kreach build <edge-list> --k <K> --output <index-file> [--cover random|degree]\n\
     \x20 kreach query <index-file> <edge-list> <s> <t>"
}

/// Pulls the value following `flag` out of `args`, if present.
fn flag_value<'a>(args: &[&'a str], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|&a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .copied()
            .map(Some)
            .ok_or_else(|| format!("flag {flag} requires a value")),
    }
}

/// The positional (non-flag, non-flag-value) arguments.
fn positionals<'a>(args: &[&'a str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, &a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Every flag of this CLI takes a value.
            skip = args.get(i + 1).is_some();
            continue;
        }
        out.push(a);
    }
    out
}

fn parse_number<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    text.parse().map_err(|e| format!("invalid {what} {text:?}: {e}"))
}

fn cmd_stats(args: &[&str]) -> Result<String, String> {
    let paths = positionals(args);
    let [path] = paths.as_slice() else {
        return Err("stats expects exactly one edge-list path".to_string());
    };
    let g = kreach::graph::io::read_edge_list_file(path).map_err(|e| e.to_string())?;
    let stats = kreach::graph::metrics::graph_stats(
        &g,
        kreach::graph::metrics::StatsConfig::default(),
    );
    Ok(format!(
        "graph {path}\n\
         |V|      {}\n\
         |E|      {}\n\
         |V_dag|  {}\n\
         |E_dag|  {}\n\
         Degmax   {}\n\
         diameter {}\n\
         median   {}\n",
        stats.vertices,
        stats.edges,
        stats.dag_vertices,
        stats.dag_edges,
        stats.max_degree,
        stats.diameter,
        stats.median_shortest_path
    ))
}

fn cmd_generate(args: &[&str]) -> Result<String, String> {
    let names = positionals(args);
    let [name] = names.as_slice() else {
        return Err("generate expects exactly one dataset name".to_string());
    };
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale: usize = match flag_value(args, "--scale")? {
        Some(v) => parse_number(v, "--scale")?,
        None => 1,
    };
    let seed: u64 = match flag_value(args, "--seed")? {
        Some(v) => parse_number(v, "--seed")?,
        None => 42,
    };
    let output = flag_value(args, "--output")?.ok_or("generate requires --output <file>")?;
    let g = spec.scaled(scale).generate(seed);
    kreach::graph::io::write_edge_list_file(&g, output).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({} vertices, {} edges, stand-in for {})\n",
        output,
        g.vertex_count(),
        g.edge_count(),
        spec.name
    ))
}

fn cmd_build(args: &[&str]) -> Result<String, String> {
    let paths = positionals(args);
    let [path] = paths.as_slice() else {
        return Err("build expects exactly one edge-list path".to_string());
    };
    let k: u32 = parse_number(flag_value(args, "--k")?.ok_or("build requires --k <K>")?, "--k")?;
    let output = flag_value(args, "--output")?.ok_or("build requires --output <index-file>")?;
    let strategy = match flag_value(args, "--cover")? {
        None | Some("degree") => CoverStrategy::DegreePriority,
        Some("random") => CoverStrategy::RandomEdge,
        Some(other) => return Err(format!("unknown cover strategy {other:?} (use random|degree)")),
    };
    let g = kreach::graph::io::read_edge_list_file(path).map_err(|e| e.to_string())?;
    let index = KReachIndex::build(&g, k, BuildOptions { cover_strategy: strategy, threads: 0 });
    storage::save_kreach(&index, output).map_err(|e| e.to_string())?;
    Ok(format!(
        "built {k}-reach index for {path}: cover {} vertices, {} index edges, {} bytes -> {output}\n",
        index.cover_size(),
        index.index_edge_count(),
        index.size_bytes()
    ))
}

fn cmd_query(args: &[&str]) -> Result<String, String> {
    let pos = positionals(args);
    let [index_path, graph_path, s, t] = pos.as_slice() else {
        return Err("query expects <index-file> <edge-list> <s> <t>".to_string());
    };
    let s = VertexId(parse_number::<u32>(s, "source vertex")?);
    let t = VertexId(parse_number::<u32>(t, "target vertex")?);
    let g = kreach::graph::io::read_edge_list_file(graph_path).map_err(|e| e.to_string())?;
    let index = storage::load_kreach(index_path).map_err(|e| e.to_string())?;
    if s.index() >= g.vertex_count() || t.index() >= g.vertex_count() {
        return Err(format!("query vertices must be < {}", g.vertex_count()));
    }
    let k = index.k();
    match index.explain(&g, s, t) {
        None => Ok(format!("{s} does NOT reach {t} within {k} hops\n")),
        Some(witness) => Ok(format!("{s} reaches {t} within {k} hops ({})\n", describe(witness))),
    }
}

fn describe(witness: QueryWitness) -> String {
    match witness {
        QueryWitness::Identity => "source equals target".to_string(),
        QueryWitness::DirectEdge => "direct edge".to_string(),
        QueryWitness::IndexEdge { weight } => {
            format!("both endpoints in the cover, index edge of weight {weight}")
        }
        QueryWitness::ThroughInNeighbor { via, weight } => {
            format!("via covered in-neighbour {via} (index weight {weight})")
        }
        QueryWitness::ThroughOutNeighbor { via, weight } => {
            format!("via covered out-neighbour {via} (index weight {weight})")
        }
        QueryWitness::ThroughSingleCoverVertex { via } => {
            format!("via the shared covered neighbour {via}")
        }
        QueryWitness::ThroughCoverPair { first, last, weight } => {
            format!("via covered vertices {first} .. {last} (index weight {weight})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn help_and_unknown_subcommands() {
        assert!(run(&args("--help")).unwrap().contains("usage"));
        assert!(run(&[]).unwrap().contains("usage"));
        assert!(run(&args("frobnicate")).is_err());
    }

    #[test]
    fn flag_parsing_helpers() {
        let a = ["build", "g.txt", "--k", "3", "--output", "idx"];
        assert_eq!(flag_value(&a, "--k").unwrap(), Some("3"));
        assert_eq!(flag_value(&a, "--cover").unwrap(), None);
        assert!(flag_value(&["--k"], "--k").is_err());
        assert_eq!(positionals(&a), vec!["build", "g.txt"]);
        assert_eq!(parse_number::<u32>("17", "x").unwrap(), 17);
        assert!(parse_number::<u32>("x", "x").is_err());
    }

    #[test]
    fn end_to_end_generate_build_query() {
        let dir = std::env::temp_dir().join("kreach-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("go.txt");
        let index_path = dir.join("go.idx");
        let graph_arg = graph_path.to_str().unwrap().to_string();
        let index_arg = index_path.to_str().unwrap().to_string();

        let out = run(&args(&format!("generate GO --scale 32 --seed 7 --output {graph_arg}")))
            .expect("generate succeeds");
        assert!(out.contains("stand-in for GO"));

        let out = run(&args(&format!("stats {graph_arg}"))).expect("stats succeeds");
        assert!(out.contains("|V|"));

        let out = run(&args(&format!("build {graph_arg} --k 4 --output {index_arg}")))
            .expect("build succeeds");
        assert!(out.contains("4-reach index"));

        let out = run(&args(&format!("query {index_arg} {graph_arg} 0 1"))).expect("query succeeds");
        assert!(out.contains("hops"));

        // Out-of-range vertices are rejected cleanly.
        assert!(run(&args(&format!("query {index_arg} {graph_arg} 0 999999"))).is_err());

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&index_path).ok();
    }

    #[test]
    fn build_rejects_bad_cover_strategy_and_missing_flags() {
        assert!(run(&args("build graph.txt --k 3")).is_err());
        assert!(run(&args("build graph.txt --output x.idx")).is_err());
        assert!(cmd_build(&["g.txt", "--k", "3", "--output", "x", "--cover", "bogus"]).is_err());
        assert!(run(&args("generate NotADataset --output x")).is_err());
    }

    #[test]
    fn witness_descriptions_are_informative() {
        assert!(describe(QueryWitness::Identity).contains("equals"));
        assert!(describe(QueryWitness::DirectEdge).contains("direct"));
        assert!(describe(QueryWitness::IndexEdge { weight: 2 }).contains("weight 2"));
        assert!(
            describe(QueryWitness::ThroughCoverPair { first: VertexId(1), last: VertexId(2), weight: 1 })
                .contains("1 .. 2")
        );
    }
}
