//! `kreach` — a small command-line front end to the library.
//!
//! Subcommands:
//!
//! * `kreach stats <edge-list>` — print the Table-2-style statistics of a graph.
//! * `kreach generate <dataset> --output <file> [--scale F] [--seed S]` —
//!   write a synthetic stand-in for one of the paper's datasets as an edge list.
//! * `kreach build <edge-list> --k <K> --output <index-file> [--cover random|degree]`
//!   — build a k-reach index and store it on disk.
//! * `kreach query <index-file> <edge-list> <s> <t>` — load an index and
//!   answer `s →k t`, printing the certificate returned by
//!   [`kreach::core::kreach::KReachIndex::explain`].
//! * `kreach workload <edge-list> --queries N --output <file> [--seed S] [--k K]`
//!   — generate a uniform random query workload file for batch serving.
//! * `kreach batch <index-file> <edge-list> <queries-file> [--workers N] [--cache C]`
//!   — answer a whole workload through the concurrent batch engine; answers
//!   print to stdout (byte-identical for every worker count), the
//!   [`EngineStats`] serving report goes to stderr.
//! * `kreach bench-serve [--dataset D] [--scale F] [--k K] [--queries N] [--workers a,b,..]`
//!   — build an index over a generated dataset, sweep worker counts over one
//!   workload, and emit throughput (queries/sec) as JSON.
//! * `kreach update <edge-list> <update-workload> [--k K] [--workers N] [--cache C]`
//!   — serve a *mixed* workload that interleaves query batches with edge
//!   insertions/removals (`+ u v` / `- u v` lines): the k-reach index is
//!   maintained incrementally and the result cache is epoch-invalidated, so
//!   every answer reflects all mutations before it.
//! * `kreach serve <edge-list> --port P [--workers N] [--backend kreach|hk|bfs|dynamic]`
//!   — serve live network traffic: an HTTP/1.1 + line-protocol front end
//!   over the batch engine with admission control (`--max-inflight`,
//!   `--max-body`) and graceful drain (`POST /shutdown`). With
//!   `--data-dir DIR` the dynamic backend becomes durable: every acked
//!   update is WAL-appended + fsynced before the ack, a background thread
//!   checkpoints every `--checkpoint-every SECS`, and a restart with the
//!   same directory (edge list no longer needed) restores the exact
//!   pre-crash epoch by replaying the WAL past the newest checkpoint.
//! * `kreach checkpoint --data-dir <dir>` — fold the WAL into a fresh
//!   checkpoint offline, so the next start replays nothing.
//! * `kreach restore --data-dir <dir>` — verify the durable state
//!   (checksums + WAL replay) and report the epoch a start would resume at.
//!
//! The serving commands (`batch`, `update`, `serve`) accept `--neg-ttl MS`,
//! a time-to-live in milliseconds for cached *negative* answers, and
//! `--prefetch-hot N`, which warms the result cache with all pairs among the
//! top-N out-degree ("celebrity") vertices at startup and after mutations.
//! They also accept `--trace N`, which turns on the structured span recorder
//! ([`kreach::obs::Recorder`]) and prints the N slowest traces as indented
//! span trees on stderr after the run; `serve` additionally takes
//! `--slow-query-us US`, logging every request slower than US microseconds
//! to an in-memory ring dumped by `GET /stats?slow=1`.
//!
//! Unknown `--flags` are rejected with an error rather than ignored.

use kreach::core::kreach::QueryWitness;
use kreach::core::storage;
use kreach::engine::{
    BatchEngine, DynamicKReachBackend, EngineConfig, KReachBackend, Query, QueryBatch,
};
use kreach::graph::dynamic::EdgeUpdate;
use kreach::obs::{Recorder, Trace};
use kreach::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

/// Dispatches a command line to its subcommand, returning the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        Some("stats") => cmd_stats(&collect_rest(args)),
        Some("generate") => cmd_generate(&collect_rest(args)),
        Some("build") => cmd_build(&collect_rest(args)),
        Some("query") => cmd_query(&collect_rest(args)),
        Some("workload") => cmd_workload(&collect_rest(args)),
        Some("batch") => cmd_batch(&collect_rest(args)),
        Some("update") => cmd_update(&collect_rest(args)),
        Some("serve") => cmd_serve(&collect_rest(args)),
        Some("checkpoint") => cmd_checkpoint(&collect_rest(args)),
        Some("restore") => cmd_restore(&collect_rest(args)),
        Some("bench-serve") => cmd_bench_serve(&collect_rest(args)),
        Some("--help") | Some("-h") | None => Ok(usage().to_string()),
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn collect_rest<'a>(rest: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    rest.collect()
}

fn usage() -> &'static str {
    "usage:\n\
     \x20 kreach stats <edge-list>\n\
     \x20 kreach generate <dataset> --output <file> [--scale F] [--seed S]\n\
     \x20 kreach build <edge-list> --k <K> --output <index-file> [--cover random|degree]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--dense-threshold D]\n\
     \x20 kreach query <index-file> <edge-list> <s> <t>\n\
     \x20 kreach workload <edge-list> --queries <N> --output <file> [--seed S] [--k K]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--hot N] [--hot-fraction F]\n\
     \x20 kreach batch <index-file> <edge-list> <queries-file> [--workers N] [--cache C]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--neg-ttl MS] [--default-k K] [--stats-json <file>]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--prefetch-hot N] [--accel-budget BYTES] [--trace N]\n\
     \x20 kreach update <edge-list> <update-workload> [--k K] [--workers N] [--cache C]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--neg-ttl MS] [--stats-json <file>] [--prefetch-hot N]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--accel-budget BYTES] [--trace N]\n\
     \x20 kreach serve [<edge-list>] [--port P] [--host H] [--backend kreach|hk|bfs|dynamic]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--k K] [--h H] [--workers N] [--cache C] [--neg-ttl MS]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--handlers N] [--max-inflight N] [--max-body BYTES]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--prefetch-hot N] [--accel-budget BYTES] [--trace N]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--slow-query-us US] [--data-dir DIR] [--checkpoint-every SECS]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--stats-interval SECS] [--max-wal-lag N] [--failpoints PLAN]\n\
     \x20 kreach checkpoint --data-dir <dir>\n\
     \x20 kreach restore --data-dir <dir>\n\
     \x20 kreach bench-serve [--dataset D] [--scale F] [--k K] [--queries N]\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20 [--workers a,b,..] [--cache C] [--seed S]"
}

/// Pulls the value following `flag` out of `args`, if present.
fn flag_value<'a>(args: &[&'a str], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|&a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .copied()
            .map(Some)
            .ok_or_else(|| format!("flag {flag} requires a value")),
    }
}

/// Rejects any `--flag` token not in `allowed` (every flag takes a value, so
/// the token after a known flag is skipped as its value).
fn ensure_known_flags(args: &[&str], allowed: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i];
        if a.starts_with("--") {
            if !allowed.contains(&a) {
                return Err(if allowed.is_empty() {
                    format!("unknown flag {a:?} (this subcommand takes no flags)")
                } else {
                    format!("unknown flag {a:?} (allowed: {})", allowed.join(", "))
                });
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(())
}

/// The positional (non-flag, non-flag-value) arguments.
fn positionals<'a>(args: &[&'a str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, &a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Every flag of this CLI takes a value.
            skip = args.get(i + 1).is_some();
            continue;
        }
        out.push(a);
    }
    out
}

fn parse_number<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    text.parse()
        .map_err(|e| format!("invalid {what} {text:?}: {e}"))
}

fn parse_flag_or<T: std::str::FromStr>(args: &[&str], flag: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag)? {
        Some(v) => parse_number(v, flag),
        None => Ok(default),
    }
}

fn cmd_stats(args: &[&str]) -> Result<String, String> {
    ensure_known_flags(args, &[])?;
    let paths = positionals(args);
    let [path] = paths.as_slice() else {
        return Err("stats expects exactly one edge-list path".to_string());
    };
    let g = kreach::graph::io::read_edge_list_file(path).map_err(|e| e.to_string())?;
    let stats =
        kreach::graph::metrics::graph_stats(&g, kreach::graph::metrics::StatsConfig::default());
    Ok(format!(
        "graph {path}\n\
         |V|      {}\n\
         |E|      {}\n\
         |V_dag|  {}\n\
         |E_dag|  {}\n\
         Degmax   {}\n\
         diameter {}\n\
         median   {}\n",
        stats.vertices,
        stats.edges,
        stats.dag_vertices,
        stats.dag_edges,
        stats.max_degree,
        stats.diameter,
        stats.median_shortest_path
    ))
}

fn cmd_generate(args: &[&str]) -> Result<String, String> {
    ensure_known_flags(args, &["--scale", "--seed", "--output"])?;
    let names = positionals(args);
    let [name] = names.as_slice() else {
        return Err("generate expects exactly one dataset name".to_string());
    };
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale: usize = parse_flag_or(args, "--scale", 1)?;
    let seed: u64 = parse_flag_or(args, "--seed", 42)?;
    let output = flag_value(args, "--output")?.ok_or("generate requires --output <file>")?;
    let g = spec.scaled(scale).generate(seed);
    kreach::graph::io::write_edge_list_file(&g, output).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({} vertices, {} edges, stand-in for {})\n",
        output,
        g.vertex_count(),
        g.edge_count(),
        spec.name
    ))
}

fn cmd_build(args: &[&str]) -> Result<String, String> {
    ensure_known_flags(
        args,
        &[
            "--k",
            "--output",
            "--cover",
            "--dense-threshold",
            "--format",
        ],
    )?;
    let paths = positionals(args);
    let [path] = paths.as_slice() else {
        return Err("build expects exactly one edge-list path".to_string());
    };
    let k: u32 = parse_number(
        flag_value(args, "--k")?.ok_or("build requires --k <K>")?,
        "--k",
    )?;
    let output = flag_value(args, "--output")?.ok_or("build requires --output <index-file>")?;
    let strategy = match flag_value(args, "--cover")? {
        None | Some("degree") => CoverStrategy::DegreePriority,
        Some("random") => CoverStrategy::RandomEdge,
        Some(other) => {
            return Err(format!(
                "unknown cover strategy {other:?} (use random|degree)"
            ))
        }
    };
    // Dense-row degree threshold for the hybrid successor representation
    // (0 disables bitset rows entirely; absent picks the built-in default).
    let dense_row_threshold = match flag_value(args, "--dense-threshold")? {
        None => None,
        Some(v) => match parse_number::<usize>(v, "--dense-threshold")? {
            0 => Some(usize::MAX),
            t => Some(t),
        },
    };
    let g = kreach::graph::io::read_edge_list_file(path).map_err(|e| e.to_string())?;
    let index = KReachIndex::build(
        &g,
        k,
        BuildOptions {
            cover_strategy: strategy,
            threads: 0,
            dense_row_threshold,
        },
    );
    // A finite threshold above every cover-row degree selects zero dense
    // rows — legal, but almost certainly a mistyped flag. Warn on stderr
    // (the index itself is fine; sparse rows answer identically).
    if let Some(threshold) = dense_row_threshold {
        if threshold != usize::MAX
            && index.index_graph().dense_row_count() == 0
            && index.index_edge_count() > 0
        {
            eprintln!(
                "warning: --dense-threshold {threshold} exceeds every cover-row degree; \
                 no dense bitset rows were built (queries fall back to sparse scans)"
            );
        }
    }
    // Format v3 (the default) also persists the dense bitset acceleration,
    // so a reload installs it instead of recomputing; v2 is kept for
    // compatibility with files older tooling must read.
    let format = flag_value(args, "--format")?.unwrap_or("v3");
    let accel_note = match format {
        "v3" => {
            kreach::store::save_index_v3(&index, output).map_err(|e| e.to_string())?;
            ", persisted"
        }
        "v2" => {
            storage::save_kreach(&index, output).map_err(|e| e.to_string())?;
            ", in-memory only"
        }
        other => return Err(format!("unknown index format {other:?} (use v2|v3)")),
    };
    Ok(format!(
        "built {k}-reach index for {path}: cover {} vertices, {} index edges \
         ({} bitset rows at threshold {}), {} bytes (+{} bytes bitset accel{}) \
         -> {output} ({format})\n",
        index.cover_size(),
        index.index_edge_count(),
        index.index_graph().dense_row_count(),
        index.index_graph().dense_threshold(),
        index.size_bytes(),
        index.index_graph().accel_size_bytes(),
        accel_note
    ))
}

fn cmd_query(args: &[&str]) -> Result<String, String> {
    ensure_known_flags(args, &[])?;
    let pos = positionals(args);
    let [index_path, graph_path, s, t] = pos.as_slice() else {
        return Err("query expects <index-file> <edge-list> <s> <t>".to_string());
    };
    let s = VertexId(parse_number::<u32>(s, "source vertex")?);
    let t = VertexId(parse_number::<u32>(t, "target vertex")?);
    let g = kreach::graph::io::read_edge_list_file(graph_path).map_err(|e| e.to_string())?;
    let index = kreach::store::load_index(index_path).map_err(|e| e.to_string())?;
    if s.index() >= g.vertex_count() || t.index() >= g.vertex_count() {
        return Err(format!("query vertices must be < {}", g.vertex_count()));
    }
    let k = index.k();
    match index.explain(&g, s, t) {
        None => Ok(format!("{s} does NOT reach {t} within {k} hops\n")),
        Some(witness) => Ok(format!(
            "{s} reaches {t} within {k} hops ({})\n",
            describe(witness)
        )),
    }
}

fn cmd_workload(args: &[&str]) -> Result<String, String> {
    ensure_known_flags(
        args,
        &[
            "--queries",
            "--seed",
            "--k",
            "--output",
            "--hot",
            "--hot-fraction",
        ],
    )?;
    let paths = positionals(args);
    let [path] = paths.as_slice() else {
        return Err("workload expects exactly one edge-list path".to_string());
    };
    let queries: usize = parse_flag_or(args, "--queries", 1000)?;
    let seed: u64 = parse_flag_or(args, "--seed", 42)?;
    let k: Option<u32> = match flag_value(args, "--k")? {
        Some(v) => Some(parse_number(v, "--k")?),
        None => None,
    };
    let output = flag_value(args, "--output")?.ok_or("workload requires --output <file>")?;
    let hot: usize = parse_flag_or(args, "--hot", 0)?;
    let hot_fraction: f64 = parse_flag_or(args, "--hot-fraction", 0.5)?;
    if !(0.0..=1.0).contains(&hot_fraction) {
        return Err(format!(
            "--hot-fraction must be in [0, 1], got {hot_fraction}"
        ));
    }
    let g = kreach::graph::io::read_edge_list_file(path).map_err(|e| e.to_string())?;
    if g.vertex_count() == 0 {
        return Err(format!("{path} describes an empty graph; nothing to query"));
    }
    let config = WorkloadConfig { queries, seed };
    // --hot N skews the workload onto the N highest-degree ("celebrity")
    // vertices, the query shape that makes the batch engine's result cache
    // effective; without it every pair over a large graph is unique.
    let workload = if hot > 0 {
        QueryWorkload::skewed(&g, config, hot, hot_fraction)
    } else {
        QueryWorkload::uniform(&g, config)
    };
    kreach::datasets::write_workload_file(workload.pairs(), k, output)
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} queries over {} vertices{} -> {}\n",
        workload.len(),
        g.vertex_count(),
        if hot > 0 {
            format!(" ({hot} hot vertices)")
        } else {
            String::new()
        },
        output
    ))
}

/// Parses `--neg-ttl MS` (milliseconds; 0 or absent disables it).
fn parse_neg_ttl(args: &[&str]) -> Result<Option<std::time::Duration>, String> {
    let millis: u64 = parse_flag_or(args, "--neg-ttl", 0)?;
    Ok((millis > 0).then(|| std::time::Duration::from_millis(millis)))
}

/// Per-thread span-ring capacity when `--trace` is on. Sized so a serving
/// run keeps a few thousand recent spans per worker without unbounded
/// growth — the slowest traces of interest are always recent ones.
const TRACE_RING_CAPACITY: usize = 4096;

/// Parses `--trace N` and builds the recorder it implies: the production
/// no-op recorder when absent or 0, a real span recorder otherwise.
fn parse_trace(args: &[&str]) -> Result<(usize, Recorder), String> {
    let trace: usize = parse_flag_or(args, "--trace", 0)?;
    let recorder = if trace > 0 {
        Recorder::new(TRACE_RING_CAPACITY)
    } else {
        Recorder::disabled()
    };
    Ok((trace, recorder))
}

/// Drains the recorder and prints the `n` slowest traces as indented span
/// trees on stderr (answers on stdout stay byte-identical regardless).
fn print_slowest_traces(recorder: &Recorder, n: usize) {
    if n == 0 {
        return;
    }
    let traces = Trace::group(recorder.drain());
    if traces.is_empty() {
        eprintln!("--trace: no spans recorded");
        return;
    }
    eprintln!(
        "--trace: {} slowest of {} traces (ring keeps the most recent \
         {TRACE_RING_CAPACITY} spans per thread):",
        n.min(traces.len()),
        traces.len()
    );
    for trace in traces.iter().take(n) {
        eprint!("{}", trace.render_tree());
    }
}

fn cmd_batch(args: &[&str]) -> Result<String, String> {
    ensure_known_flags(
        args,
        &[
            "--workers",
            "--cache",
            "--neg-ttl",
            "--default-k",
            "--stats-json",
            "--prefetch-hot",
            "--accel-budget",
            "--trace",
        ],
    )?;
    let pos = positionals(args);
    let [index_path, graph_path, queries_path] = pos.as_slice() else {
        return Err("batch expects <index-file> <edge-list> <queries-file>".to_string());
    };
    let workers: usize = parse_flag_or(args, "--workers", 0)?;
    let cache: usize = parse_flag_or(args, "--cache", EngineConfig::default().cache_capacity)?;
    let neg_ttl = parse_neg_ttl(args)?;
    let prefetch_hot: usize = parse_flag_or(args, "--prefetch-hot", 0)?;
    let accel_budget: usize = parse_flag_or(args, "--accel-budget", 0)?;
    let (trace, recorder) = parse_trace(args)?;
    // Resolved before the (possibly long) run so a malformed flag cannot
    // discard a finished batch.
    let stats_json = flag_value(args, "--stats-json")?;

    let g =
        Arc::new(kreach::graph::io::read_edge_list_file(graph_path).map_err(|e| e.to_string())?);
    let index = kreach::store::load_index(index_path).map_err(|e| e.to_string())?;
    if index.index_graph().input_vertex_count() != g.vertex_count() {
        return Err(format!(
            "index {index_path} was built for a graph with {} vertices, but {graph_path} has {}; \
             rebuild the index for this edge list",
            index.index_graph().input_vertex_count(),
            g.vertex_count()
        ));
    }
    let default_k: u32 = parse_flag_or(args, "--default-k", index.k())?;
    let entries = kreach::datasets::read_workload_file(queries_path).map_err(|e| e.to_string())?;
    let batch = QueryBatch::from_triples(&entries, default_k);

    let engine = BatchEngine::with_recorder(
        Arc::new(KReachBackend::new(Arc::clone(&g), index)),
        EngineConfig {
            workers,
            cache_capacity: cache,
            neg_ttl,
            prefetch_hot,
            accel_budget,
            ..EngineConfig::default()
        },
        recorder.clone(),
    );
    let outcome = engine.run(&batch).map_err(|e| e.to_string())?;

    // Answers to stdout (deterministic: byte-identical for every worker
    // count, and for the network server's POST /batch — both go through
    // the shared renderer); the timing-dependent report goes to stderr.
    let out = kreach::datasets::render_answer_lines(batch.answered(&outcome.answers));
    eprintln!("{}", outcome.stats);
    print_slowest_traces(&recorder, trace);
    if let Some(path) = stats_json {
        std::fs::write(path, outcome.stats.to_json() + "\n").map_err(|e| e.to_string())?;
    }
    Ok(out)
}

fn cmd_update(args: &[&str]) -> Result<String, String> {
    ensure_known_flags(
        args,
        &[
            "--k",
            "--workers",
            "--cache",
            "--neg-ttl",
            "--stats-json",
            "--prefetch-hot",
            "--accel-budget",
            "--trace",
        ],
    )?;
    let pos = positionals(args);
    let [graph_path, workload_path] = pos.as_slice() else {
        return Err("update expects <edge-list> <update-workload>".to_string());
    };
    let k: u32 = parse_flag_or(args, "--k", 3)?;
    if k == 0 {
        return Err("--k must be at least 1".to_string());
    }
    let workers: usize = parse_flag_or(args, "--workers", 0)?;
    let cache: usize = parse_flag_or(args, "--cache", EngineConfig::default().cache_capacity)?;
    let neg_ttl = parse_neg_ttl(args)?;
    let prefetch_hot: usize = parse_flag_or(args, "--prefetch-hot", 0)?;
    let accel_budget: usize = parse_flag_or(args, "--accel-budget", 0)?;
    let (trace, recorder) = parse_trace(args)?;
    let stats_json = flag_value(args, "--stats-json")?;

    let g = kreach::graph::io::read_edge_list_file(graph_path).map_err(|e| e.to_string())?;
    let ops =
        kreach::datasets::read_update_workload_file(workload_path).map_err(|e| e.to_string())?;
    let backend = Arc::new(DynamicKReachBackend::new(
        g,
        k,
        kreach::core::dynamic::DynamicOptions::default(),
    ));
    let engine = BatchEngine::with_recorder(
        Arc::clone(&backend) as Arc<dyn kreach::engine::Reachability>,
        EngineConfig {
            workers,
            cache_capacity: cache,
            neg_ttl,
            prefetch_hot,
            accel_budget,
            ..EngineConfig::default()
        },
        recorder.clone(),
    );

    let started = std::time::Instant::now();
    let mut out = String::new();
    let mut pending: Vec<Query> = Vec::new();
    let mut total_queries = 0usize;
    let mut query_secs = 0.0f64;
    let mut update_secs = 0.0f64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut mutations = 0usize;

    let flush =
        |pending: &mut Vec<Query>, out: &mut String| -> Result<(usize, f64, u64, u64), String> {
            if pending.is_empty() {
                return Ok((0, 0.0, 0, 0));
            }
            let batch = QueryBatch::new(std::mem::take(pending));
            let outcome = engine.run(&batch).map_err(|e| e.to_string())?;
            out.push_str(&kreach::datasets::render_answer_lines(
                batch.answered(&outcome.answers),
            ));
            Ok((
                outcome.stats.queries,
                outcome.stats.elapsed_secs,
                outcome.stats.cache_hits,
                outcome.stats.cache_misses,
            ))
        };

    for op in &ops {
        match *op {
            kreach::datasets::UpdateOp::Query { s, t, k: qk } => {
                pending.push(Query {
                    s,
                    t,
                    k: qk.unwrap_or(k),
                });
            }
            kreach::datasets::UpdateOp::Insert { u, v }
            | kreach::datasets::UpdateOp::Remove { u, v } => {
                let (queries, secs, hits, misses) = flush(&mut pending, &mut out)?;
                total_queries += queries;
                query_secs += secs;
                cache_hits += hits;
                cache_misses += misses;
                let insert = matches!(op, kreach::datasets::UpdateOp::Insert { .. });
                let update = if insert {
                    EdgeUpdate::Insert(u, v)
                } else {
                    EdgeUpdate::Remove(u, v)
                };
                let apply_started = std::time::Instant::now();
                let outcome = engine.apply_updates(&[update]).map_err(|e| e.to_string())?;
                update_secs += apply_started.elapsed().as_secs_f64();
                mutations += 1;
                out.push_str(&kreach::datasets::render_update_ack(
                    insert,
                    u,
                    v,
                    outcome.stats.applied() > 0,
                    outcome.epoch,
                ));
                out.push('\n');
            }
        }
    }
    let (queries, secs, hits, misses) = flush(&mut pending, &mut out)?;
    total_queries += queries;
    query_secs += secs;
    cache_hits += hits;
    cache_misses += misses;

    let elapsed = started.elapsed().as_secs_f64();
    let stats = backend.with_state(|s| s.stats());
    // Timed directly around the apply_updates calls, not inferred from the
    // wall clock, so query-heavy workloads do not distort the figure.
    let updates_per_sec = if update_secs > 0.0 && mutations > 0 {
        mutations as f64 / update_secs
    } else {
        0.0
    };
    // Per-update maintenance cost: the headline number for the versioned
    // storage path (independent of |E|, unlike the old snapshot-per-update).
    let rows_per_update = stats.rows_patched as f64 / stats.applied().max(1) as f64;
    let summary = format!(
        "dynamic-k-reach · {total_queries} queries · {mutations} mutations \
         ({} applied, {} noops) in {elapsed:.3}s · {updates_per_sec:.0} updates/s · \
         {rows_per_update:.2} rows patched/update ({} total, {} coalesced) · \
         cache {cache_hits}/{} hits · {} cover additions · {} rebuilds · epoch {}",
        stats.applied(),
        stats.noops,
        stats.rows_patched,
        stats.rows_coalesced,
        cache_hits + cache_misses,
        stats.cover_additions,
        stats.full_rebuilds,
        engine.epoch(),
    );
    eprintln!("{summary}");
    print_slowest_traces(&recorder, trace);
    if let Some(path) = stats_json {
        let json = format!(
            concat!(
                "{{\"queries\":{},\"mutations\":{},\"applied\":{},\"noops\":{},",
                "\"rows_patched\":{},\"rows_coalesced\":{},\"rows_per_update\":{:.3},",
                "\"cover_additions\":{},\"full_rebuilds\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"epoch\":{},",
                "\"elapsed_secs\":{:.6},\"query_secs\":{:.6},\"update_secs\":{:.6},",
                "\"updates_per_sec\":{:.1}}}\n"
            ),
            total_queries,
            mutations,
            stats.applied(),
            stats.noops,
            stats.rows_patched,
            stats.rows_coalesced,
            rows_per_update,
            stats.cover_additions,
            stats.full_rebuilds,
            cache_hits,
            cache_misses,
            engine.epoch(),
            elapsed,
            query_secs,
            update_secs,
            updates_per_sec,
        );
        std::fs::write(path, json).map_err(|e| e.to_string())?;
    }
    Ok(out)
}

/// Builds the requested serving backend over an already-loaded graph.
fn build_backend(
    name: &str,
    g: &Arc<DiGraph>,
    k: u32,
    h: u32,
) -> Result<Arc<dyn kreach::engine::Reachability>, String> {
    Ok(match name {
        "kreach" => {
            let index = KReachIndex::build(g.as_ref(), k, BuildOptions::default());
            Arc::new(kreach::engine::KReachBackend::new(Arc::clone(g), index))
        }
        "hk" => {
            let index = HkReachIndex::build(g.as_ref(), h, k);
            Arc::new(kreach::engine::HkReachBackend::new(Arc::clone(g), index))
        }
        "bfs" => Arc::new(kreach::engine::BfsBackend::new(Arc::clone(g), k)),
        "dynamic" => Arc::new(DynamicKReachBackend::new(
            (**g).clone(),
            k,
            kreach::core::dynamic::DynamicOptions::default(),
        )),
        other => {
            return Err(format!(
                "unknown backend {other:?} (use kreach|hk|bfs|dynamic)"
            ))
        }
    })
}

fn cmd_serve(args: &[&str]) -> Result<String, String> {
    ensure_known_flags(
        args,
        &[
            "--port",
            "--host",
            "--backend",
            "--k",
            "--h",
            "--workers",
            "--cache",
            "--neg-ttl",
            "--handlers",
            "--max-inflight",
            "--max-body",
            "--prefetch-hot",
            "--accel-budget",
            "--trace",
            "--slow-query-us",
            "--data-dir",
            "--checkpoint-every",
            "--stats-interval",
            "--max-wal-lag",
            "--failpoints",
        ],
    )?;
    let data_dir = flag_value(args, "--data-dir")?;
    let checkpoint_every: u64 = parse_flag_or(args, "--checkpoint-every", 30)?;
    let max_wal_lag: Option<u64> = match flag_value(args, "--max-wal-lag")? {
        Some(v) => Some(
            v.parse()
                .map_err(|e| format!("invalid --max-wal-lag {v:?}: {e}"))?,
        ),
        None => None,
    };
    // `--failpoints <plan>` arms the storage fault injector (chaos drills;
    // debug / `--features failpoints` builds only). The plan is validated
    // here — a typo must fail the command — then exported so the store's
    // io layer picks it up at open.
    if let Some(plan) = flag_value(args, "--failpoints")? {
        if !kreach::store::failpoints_compiled() {
            return Err(
                "--failpoints requires a build with fault injection compiled in \
                 (a debug build, or release with --features failpoints)"
                    .to_string(),
            );
        }
        kreach::store::validate_fault_plan(plan)
            .map_err(|e| format!("invalid --failpoints plan: {e}"))?;
        std::env::set_var("KREACH_FAILPOINTS", plan);
        eprintln!("kreach-store: fault injection armed: {plan}");
    }
    let pos = positionals(args);
    let graph_path = match (pos.as_slice(), data_dir) {
        ([path], _) => Some(*path),
        ([], Some(_)) => None,
        ([], None) => return Err("serve expects exactly one edge-list path".to_string()),
        _ => return Err("serve expects at most one edge-list path".to_string()),
    };
    let port: u16 = parse_flag_or(args, "--port", 7199)?;
    let host = flag_value(args, "--host")?
        .unwrap_or("127.0.0.1")
        .to_string();
    let backend_name = flag_value(args, "--backend")?.unwrap_or(if data_dir.is_some() {
        "dynamic"
    } else {
        "kreach"
    });
    if data_dir.is_some() && backend_name != "dynamic" {
        return Err(format!(
            "--data-dir implies --backend dynamic (only the incrementally \
             maintained index accepts updates), got {backend_name:?}"
        ));
    }
    let k: u32 = parse_flag_or(args, "--k", 3)?;
    if k == 0 {
        return Err("--k must be at least 1".to_string());
    }
    let h: u32 = parse_flag_or(args, "--h", 1)?;
    let workers: usize = parse_flag_or(args, "--workers", 0)?;
    let cache: usize = parse_flag_or(args, "--cache", EngineConfig::default().cache_capacity)?;
    let neg_ttl = parse_neg_ttl(args)?;
    let prefetch_hot: usize = parse_flag_or(args, "--prefetch-hot", 0)?;
    let accel_budget: usize = parse_flag_or(args, "--accel-budget", 0)?;
    let server_defaults = kreach::server::ServerConfig::default();
    let handlers: usize = parse_flag_or(args, "--handlers", server_defaults.handlers)?;
    let max_inflight: usize = parse_flag_or(args, "--max-inflight", server_defaults.max_inflight)?;
    let max_body: usize = parse_flag_or(args, "--max-body", server_defaults.max_body_bytes)?;
    let slow_query_us: u64 = parse_flag_or(args, "--slow-query-us", server_defaults.slow_query_us)?;
    let stats_interval: u64 = parse_flag_or(args, "--stats-interval", 0)?;
    let (trace, recorder) = parse_trace(args)?;
    // The slow-query log stores span trees per entry, so it needs a live
    // recorder even when --trace itself was not requested.
    let recorder = if slow_query_us > 0 && !recorder.is_enabled() {
        Recorder::new(TRACE_RING_CAPACITY)
    } else {
        recorder
    };

    // With --data-dir the backend comes from the durable store: restore
    // checkpoint + WAL if the directory has one, otherwise bootstrap from
    // the edge list and take an initial checkpoint so a restart never needs
    // the edge list again. `durable` keeps the concrete handles the
    // checkpointer and the durability sink need.
    let mut durable: Option<(Arc<kreach::store::Store>, Arc<DynamicKReachBackend>, u64)> = None;
    // The observability bundle outlives the server handle: the CLI keeps
    // clones for the stderr ticker, the drain-time flight-recorder dump,
    // and the panic hook.
    let obs_windows = Arc::new(kreach::obs::WindowStats::new());
    let obs_events = Arc::new(kreach::obs::FlightRecorder::default());
    let backend: Arc<dyn kreach::engine::Reachability> = match data_dir {
        Some(dir) => {
            let store = Arc::new(
                kreach::store::Store::open(dir, kreach::core::dynamic::DynamicOptions::default())
                    .map_err(|e| format!("cannot open data dir {dir}: {e}"))?,
            );
            // Installed before restore so the restore itself lands in the
            // flight recorder.
            store.set_events(Arc::clone(&obs_events));
            let (backend, epoch) = if store.has_checkpoint().map_err(|e| e.to_string())? {
                let report = store
                    .restore()
                    .map_err(|e| format!("restore failed: {e}"))?;
                println!(
                    "kreach-store: restored epoch {} from {} (checkpoint epoch {}, \
                     replayed {} wal batches / {} ops{}{})",
                    report.epoch,
                    dir,
                    report.checkpoint_epoch,
                    report.replayed_batches,
                    report.replayed_ops,
                    if report.torn_tail {
                        ", dropped torn tail"
                    } else {
                        ""
                    },
                    if graph_path.is_some() {
                        "; ignoring edge-list argument"
                    } else {
                        ""
                    },
                );
                // k is baked into the restored maintainer state; an
                // explicit --k that disagrees would otherwise be silently
                // ignored.
                if flag_value(args, "--k")?.is_some() && k != report.state.k() {
                    eprintln!(
                        "kreach-store: warning: ignoring --k {k}; the restored state was \
                         built with k={} (bootstrap a fresh data dir to change k)",
                        report.state.k()
                    );
                }
                (
                    Arc::new(DynamicKReachBackend::from_state(report.state)),
                    report.epoch,
                )
            } else {
                let path = graph_path.ok_or_else(|| {
                    format!("{dir} has no checkpoint; serve needs an edge-list to bootstrap")
                })?;
                let g = kreach::graph::io::read_edge_list_file(path).map_err(|e| e.to_string())?;
                let state = kreach::core::dynamic::DynamicKReach::new(
                    g,
                    k,
                    kreach::core::dynamic::DynamicOptions::default(),
                );
                store
                    .checkpoint_state(&state, 0)
                    .map_err(|e| format!("bootstrap checkpoint failed: {e}"))?;
                println!("kreach-store: bootstrapped {dir} from {path} (checkpoint at epoch 0)");
                (Arc::new(DynamicKReachBackend::from_state(state)), 0)
            };
            durable = Some((store, Arc::clone(&backend), epoch));
            backend
        }
        None => {
            let g = Arc::new(
                kreach::graph::io::read_edge_list_file(graph_path.expect("checked above"))
                    .map_err(|e| e.to_string())?,
            );
            build_backend(backend_name, &g, k, h)?
        }
    };
    let engine = Arc::new(BatchEngine::with_recorder(
        backend,
        EngineConfig {
            workers,
            cache_capacity: cache,
            neg_ttl,
            prefetch_hot,
            accel_budget,
            ..EngineConfig::default()
        },
        recorder.clone(),
    ));
    let mut checkpointer = None;
    let mut prober = None;
    if let Some((store, dyn_backend, epoch)) = &durable {
        engine.restore_epoch(*epoch);
        // Every acked update is WAL-appended + fsynced before the ack from
        // here on.
        engine.set_durability(Arc::clone(store) as Arc<dyn kreach::engine::DurabilitySink>);
        if checkpoint_every > 0 {
            checkpointer = Some(kreach::store::spawn_checkpointer(
                Arc::clone(store),
                Arc::clone(&engine),
                Arc::clone(dyn_backend),
                std::time::Duration::from_secs(checkpoint_every),
                *epoch,
            ));
        }
        // If a storage fault fences the engine read-only, this loop probes
        // the WAL with capped exponential backoff and restores read-write
        // serving as soon as the disk recovers — no restart needed.
        prober = Some(kreach::engine::spawn_degraded_prober(
            Arc::clone(&engine),
            std::time::Duration::from_millis(200),
            std::time::Duration::from_secs(5),
        ));
    }
    let info = engine.info();
    let flight_dump_dir = data_dir.map(std::path::PathBuf::from);
    // A panic must not lose the flight recorder: dump it next to the data
    // dir before the default hook aborts/unwinds the report.
    if let Some(dir) = &flight_dump_dir {
        let hook_events = Arc::clone(&obs_events);
        let hook_dir = dir.clone();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |panic_info| {
            hook_events.record("panic", panic_info.to_string());
            let _ = hook_events.dump_to(&hook_dir);
            previous(panic_info);
        }));
    }
    let handle = kreach::server::start_with_obs(
        Arc::clone(&engine),
        kreach::server::ServerConfig {
            host,
            port,
            handlers,
            max_inflight,
            max_body_bytes: max_body,
            slow_query_us,
            max_wal_lag,
            ..server_defaults
        },
        kreach::server::ServerObs {
            windows: Arc::clone(&obs_windows),
            events: Arc::clone(&obs_events),
            durability: durable
                .as_ref()
                .map(|(store, _, _)| store.durability_stats()),
            flight_dump_dir: flight_dump_dir.clone(),
        },
    )
    .map_err(|e| format!("failed to bind: {e}"))?;

    // `--stats-interval SECS` prints a rolling-window ticker to stderr (the
    // 10s window: wide enough to smooth batch arrivals, narrow enough to
    // show a traffic change within one line or two).
    let ticker_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    if stats_interval > 0 {
        let windows = Arc::clone(&obs_windows);
        let stop = Arc::clone(&ticker_stop);
        std::thread::Builder::new()
            .name("kreach-stats-ticker".to_string())
            .spawn(move || {
                let tick = std::time::Duration::from_millis(250);
                let mut elapsed = std::time::Duration::ZERO;
                let interval = std::time::Duration::from_secs(stats_interval);
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    std::thread::sleep(tick);
                    elapsed += tick;
                    if elapsed >= interval {
                        elapsed = std::time::Duration::ZERO;
                        eprintln!("kreach-obs: {}", windows.snapshot(10).ticker_line());
                    }
                }
            })
            .expect("failed to spawn stats ticker");
    }

    // Printed before blocking (stdout is line-buffered) so scripts can read
    // the actual port back even with --port 0.
    println!(
        "kreach-server listening on http://{} · backend {} · k={} · {} engine workers · \
         {} handlers · in-flight budget {} (POST /shutdown to drain)",
        handle.addr(),
        info.backend,
        info.default_k,
        info.workers,
        handlers,
        max_inflight,
    );

    // Blocks until a drain is requested over the wire (POST /shutdown).
    let report = handle.join();
    ticker_stop.store(true, std::sync::atomic::Ordering::Release);
    if let Some(ckpt) = checkpointer.take() {
        ckpt.stop();
    }
    if let Some(p) = prober.take() {
        p.stop();
    }
    // Final checkpoint on clean drain, so the next start replays no WAL.
    if let Some((store, dyn_backend, _)) = &durable {
        match kreach::store::engine_checkpoint(store, &engine, dyn_backend) {
            Ok(epoch) => println!("kreach-store: final checkpoint at epoch {epoch}"),
            Err(e) => eprintln!("kreach-store: final checkpoint failed: {e}"),
        }
    }
    // The drain itself is the recorder's last event; then the whole ring
    // goes to disk so a post-mortem can see what led up to the shutdown.
    obs_events.record(
        "drain",
        format!(
            "clean={} admitted={} queries={} mutations={}",
            report.clean, report.metrics.admitted, report.metrics.queries, report.metrics.mutations,
        ),
    );
    if let Some(dir) = &flight_dump_dir {
        match obs_events.dump_to(dir) {
            Ok(path) => println!(
                "kreach-obs: flight recorder ({} events) dumped to {}",
                obs_events.total(),
                path.display()
            ),
            Err(e) => eprintln!("kreach-obs: flight-recorder dump failed: {e}"),
        }
    }
    print_slowest_traces(&recorder, trace);
    let m = &report.metrics;
    Ok(format!(
        "drained clean={} · {} connections admitted ({} shed, {} accepted) · \
         {} http requests · {} line ops · {} queries · {} mutations · \
         {} ok / {} client errors / {} server errors · {} slow queries\n",
        report.clean,
        m.admitted,
        m.shed,
        m.accepted,
        m.http_requests,
        m.line_ops,
        m.queries,
        m.mutations,
        m.ok,
        m.client_errors,
        m.server_errors,
        report.slow_queries,
    ))
}

/// Opens a data directory that must already exist (the read-side commands
/// never create one by accident).
fn open_existing_store(
    args: &[&str],
    what: &str,
) -> Result<(String, kreach::store::Store), String> {
    ensure_known_flags(args, &["--data-dir"])?;
    if !positionals(args).is_empty() {
        return Err(format!("{what} takes only --data-dir <dir>"));
    }
    let dir = flag_value(args, "--data-dir")?.ok_or(format!("{what} requires --data-dir <dir>"))?;
    if !std::path::Path::new(dir).is_dir() {
        return Err(format!("{dir} is not a directory"));
    }
    let store = kreach::store::Store::open(dir, kreach::core::dynamic::DynamicOptions::default())
        .map_err(|e| format!("cannot open data dir {dir}: {e}"))?;
    Ok((dir.to_string(), store))
}

/// `kreach checkpoint --data-dir <dir>`: fold the WAL into a fresh
/// checkpoint offline, so the next `serve` start replays nothing.
fn cmd_checkpoint(args: &[&str]) -> Result<String, String> {
    let (dir, store) = open_existing_store(args, "checkpoint")?;
    let report = store
        .restore()
        .map_err(|e| format!("restore failed: {e}"))?;
    store
        .checkpoint_state(&report.state, report.epoch)
        .map_err(|e| format!("checkpoint failed: {e}"))?;
    Ok(format!(
        "checkpointed {dir} at epoch {} (folded in {} wal batches / {} ops{}; \
         graph {} vertices / {} edges, cover {} vertices)\n",
        report.epoch,
        report.replayed_batches,
        report.replayed_ops,
        if report.torn_tail {
            ", dropped torn tail"
        } else {
            ""
        },
        report.state.graph().vertex_count(),
        report.state.graph().edge_count(),
        report.state.cover_size(),
    ))
}

/// `kreach restore --data-dir <dir>`: load and verify the durable state
/// (checkpoint checksums + WAL replay) and report what a server start
/// would see, without modifying checkpoints, manifest, or WAL records.
fn cmd_restore(args: &[&str]) -> Result<String, String> {
    let (dir, store) = open_existing_store(args, "restore")?;
    let report = store
        .restore()
        .map_err(|e| format!("restore failed: {e}"))?;
    Ok(format!(
        "{dir} restores to epoch {}: checkpoint epoch {}, {} wal batches / {} ops replayed{}\n\
         graph {} vertices / {} edges · cover {} vertices · k={}\n",
        report.epoch,
        report.checkpoint_epoch,
        report.replayed_batches,
        report.replayed_ops,
        if report.torn_tail {
            " (torn tail dropped)"
        } else {
            ""
        },
        report.state.graph().vertex_count(),
        report.state.graph().edge_count(),
        report.state.cover_size(),
        report.state.k(),
    ))
}

fn cmd_bench_serve(args: &[&str]) -> Result<String, String> {
    ensure_known_flags(
        args,
        &[
            "--dataset",
            "--scale",
            "--k",
            "--queries",
            "--workers",
            "--cache",
            "--seed",
        ],
    )?;
    if !positionals(args).is_empty() {
        return Err("bench-serve takes only flags".to_string());
    }
    let dataset = flag_value(args, "--dataset")?.unwrap_or("AgroCyc");
    let spec = spec_by_name(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let scale: usize = parse_flag_or(args, "--scale", 20)?;
    let k: u32 = parse_flag_or(args, "--k", 4)?;
    let queries: usize = parse_flag_or(args, "--queries", 10_000)?;
    let seed: u64 = parse_flag_or(args, "--seed", 42)?;
    let cache: usize = parse_flag_or(args, "--cache", EngineConfig::default().cache_capacity)?;
    let worker_list: Vec<usize> = match flag_value(args, "--workers")? {
        None => vec![1, 0],
        Some(list) => list
            .split(',')
            .map(|w| parse_number(w.trim(), "--workers entry"))
            .collect::<Result<_, _>>()?,
    };
    if worker_list.is_empty() {
        return Err("--workers needs at least one entry".to_string());
    }

    let g = Arc::new(spec.scaled(scale).generate(seed));
    let runs = kreach::engine::sweep::serve_sweep(&g, k, queries, seed, &worker_list, cache);

    let base_qps = runs[0].stats.queries_per_sec;
    let speedup = if runs.len() > 1 && base_qps > 0.0 {
        runs.last().expect("nonempty").stats.queries_per_sec / base_qps
    } else {
        1.0
    };
    let run_objects: Vec<String> = runs.iter().map(|p| p.stats.to_json()).collect();
    Ok(format!(
        "{{\"dataset\":\"{}\",\"scale\":{},\"k\":{},\"vertices\":{},\"edges\":{},\
         \"queries\":{},\"runs\":[{}],\"speedup\":{:.3}}}\n",
        spec.name,
        scale,
        k,
        g.vertex_count(),
        g.edge_count(),
        queries,
        run_objects.join(","),
        speedup
    ))
}

fn describe(witness: QueryWitness) -> String {
    match witness {
        QueryWitness::Identity => "source equals target".to_string(),
        QueryWitness::DirectEdge => "direct edge".to_string(),
        QueryWitness::IndexEdge { weight } => {
            format!("both endpoints in the cover, index edge of weight {weight}")
        }
        QueryWitness::ThroughInNeighbor { via, weight } => {
            format!("via covered in-neighbour {via} (index weight {weight})")
        }
        QueryWitness::ThroughOutNeighbor { via, weight } => {
            format!("via covered out-neighbour {via} (index weight {weight})")
        }
        QueryWitness::ThroughSingleCoverVertex { via } => {
            format!("via the shared covered neighbour {via}")
        }
        QueryWitness::ThroughCoverPair {
            first,
            last,
            weight,
        } => {
            format!("via covered vertices {first} .. {last} (index weight {weight})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn help_and_unknown_subcommands() {
        assert!(run(&args("--help")).unwrap().contains("usage"));
        assert!(run(&[]).unwrap().contains("usage"));
        assert!(run(&args("frobnicate")).is_err());
    }

    #[test]
    fn flag_parsing_helpers() {
        let a = ["build", "g.txt", "--k", "3", "--output", "idx"];
        assert_eq!(flag_value(&a, "--k").unwrap(), Some("3"));
        assert_eq!(flag_value(&a, "--cover").unwrap(), None);
        assert!(flag_value(&["--k"], "--k").is_err());
        assert_eq!(positionals(&a), vec!["build", "g.txt"]);
        assert_eq!(parse_number::<u32>("17", "x").unwrap(), 17);
        assert!(parse_number::<u32>("x", "x").is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        let err = run(&args("build g.txt --k 3 --output x --bogus 1")).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        assert!(err.contains("allowed"), "{err}");
        let err = run(&args("stats g.txt --scale 2")).unwrap_err();
        assert!(err.contains("--scale") && err.contains("no flags"), "{err}");
        assert!(run(&args("generate GO --output x --frobnicate yes")).is_err());
        assert!(run(&args("workload g.txt --output x --banana 3")).is_err());
        assert!(run(&args("batch i g q --turbo on")).is_err());
        assert!(run(&args("bench-serve --sharding 9")).is_err());
    }

    #[test]
    fn end_to_end_generate_build_query() {
        let dir = std::env::temp_dir().join(format!("kreach-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("go.txt");
        let index_path = dir.join("go.idx");
        let graph_arg = graph_path.to_str().unwrap().to_string();
        let index_arg = index_path.to_str().unwrap().to_string();

        let out = run(&args(&format!(
            "generate GO --scale 32 --seed 7 --output {graph_arg}"
        )))
        .expect("generate succeeds");
        assert!(out.contains("stand-in for GO"));

        let out = run(&args(&format!("stats {graph_arg}"))).expect("stats succeeds");
        assert!(out.contains("|V|"));

        let out = run(&args(&format!(
            "build {graph_arg} --k 4 --output {index_arg}"
        )))
        .expect("build succeeds");
        assert!(out.contains("4-reach index"));

        let out =
            run(&args(&format!("query {index_arg} {graph_arg} 0 1"))).expect("query succeeds");
        assert!(out.contains("hops"));

        // Out-of-range vertices are rejected cleanly.
        assert!(run(&args(&format!("query {index_arg} {graph_arg} 0 999999"))).is_err());

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&index_path).ok();
    }

    #[test]
    fn end_to_end_workload_and_batch_are_deterministic_across_workers() {
        let dir =
            std::env::temp_dir().join(format!("kreach-cli-batch-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_arg = dir.join("g.txt").to_str().unwrap().to_string();
        let index_arg = dir.join("g.idx").to_str().unwrap().to_string();
        let queries_arg = dir.join("q.txt").to_str().unwrap().to_string();

        run(&args(&format!(
            "generate Kegg --scale 40 --seed 3 --output {graph_arg}"
        )))
        .expect("generate succeeds");
        run(&args(&format!(
            "build {graph_arg} --k 3 --output {index_arg}"
        )))
        .expect("build succeeds");
        let out = run(&args(&format!(
            "workload {graph_arg} --queries 2000 --seed 9 --output {queries_arg}"
        )))
        .expect("workload succeeds");
        assert!(out.contains("2000 queries"), "{out}");

        let serial = run(&args(&format!(
            "batch {index_arg} {graph_arg} {queries_arg} --workers 1"
        )))
        .expect("1-worker batch succeeds");
        let parallel = run(&args(&format!(
            "batch {index_arg} {graph_arg} {queries_arg} --workers 4"
        )))
        .expect("4-worker batch succeeds");
        assert_eq!(serial, parallel, "answers must not depend on worker count");
        // Tracing is an observer: answers stay byte-identical under --trace.
        let traced = run(&args(&format!(
            "batch {index_arg} {graph_arg} {queries_arg} --workers 4 --trace 3"
        )))
        .expect("traced batch succeeds");
        assert_eq!(serial, traced, "tracing must not change answers");
        assert_eq!(serial.lines().count(), 2000);
        assert!(serial.lines().all(|l| l.ends_with("reachable")));
        assert!(serial.contains(" 3 "), "per-line k column present");

        // A mismatched edge list is rejected instead of answered wrongly.
        let other_arg = dir.join("other.txt").to_str().unwrap().to_string();
        run(&args(&format!(
            "generate Xmark --scale 60 --seed 1 --output {other_arg}"
        )))
        .expect("second generate succeeds");
        let err = run(&args(&format!(
            "batch {index_arg} {other_arg} {queries_arg}"
        )))
        .unwrap_err();
        assert!(err.contains("rebuild the index"), "{err}");
        std::fs::remove_file(dir.join("other.txt")).ok();

        // Honors an explicit per-query k column over the index default.
        std::fs::write(dir.join("q.txt"), "0 1 1\n0 1\n").unwrap();
        let two = run(&args(&format!(
            "batch {index_arg} {graph_arg} {queries_arg}"
        )))
        .expect("mixed-k batch succeeds");
        let lines: Vec<&str> = two.lines().collect();
        assert!(lines[0].starts_with("0 1 1 "));
        assert!(lines[1].starts_with("0 1 3 "));

        for f in ["g.txt", "g.idx", "q.txt"] {
            std::fs::remove_file(dir.join(f)).ok();
        }
    }

    #[test]
    fn skewed_workload_produces_cache_hits_in_batch() {
        let dir = std::env::temp_dir().join(format!("kreach-cli-skew-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_arg = dir.join("g.txt").to_str().unwrap().to_string();
        let index_arg = dir.join("g.idx").to_str().unwrap().to_string();
        let queries_arg = dir.join("q.txt").to_str().unwrap().to_string();
        let stats_arg = dir.join("stats.json").to_str().unwrap().to_string();

        run(&args(&format!(
            "generate AgroCyc --scale 10 --seed 5 --output {graph_arg}"
        )))
        .expect("generate succeeds");
        run(&args(&format!(
            "build {graph_arg} --k 4 --output {index_arg}"
        )))
        .expect("build succeeds");
        let out = run(&args(&format!(
            "workload {graph_arg} --queries 3000 --seed 2 --hot 16 --hot-fraction 0.9 \
             --output {queries_arg}"
        )))
        .expect("skewed workload succeeds");
        assert!(out.contains("16 hot vertices"), "{out}");
        run(&args(&format!(
            "batch {index_arg} {graph_arg} {queries_arg} --workers 4 --stats-json {stats_arg}"
        )))
        .expect("batch succeeds");
        let stats = std::fs::read_to_string(&stats_arg).unwrap();
        assert!(stats.contains("\"cache_hits\":"), "{stats}");
        let hits: u64 = stats
            .split("\"cache_hits\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|num| num.parse().ok())
            .expect("cache_hits field parses");
        assert!(hits > 0, "skewed workload must hit the cache: {stats}");

        assert!(run(&args(&format!(
            "workload {graph_arg} --queries 10 --hot 4 --hot-fraction 1.5 --output {queries_arg}"
        )))
        .is_err());
        for f in ["g.txt", "g.idx", "q.txt", "stats.json"] {
            std::fs::remove_file(dir.join(f)).ok();
        }
    }

    #[test]
    fn end_to_end_update_workload_reflects_mutations() {
        let dir =
            std::env::temp_dir().join(format!("kreach-cli-update-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_arg = dir.join("g.txt").to_str().unwrap().to_string();
        let ops_arg = dir.join("ops.txt").to_str().unwrap().to_string();
        let stats_arg = dir.join("stats.json").to_str().unwrap().to_string();

        // Edges 0→1 and 3→2: vertex 2 has no path from 0.
        std::fs::write(dir.join("g.txt"), "0 1\n3 2\n").unwrap();
        // Query, open the path, re-query, close it, re-query. The repeated
        // (0, 2, 2) query is the cache-staleness probe: its answer must
        // track the mutations.
        std::fs::write(
            dir.join("ops.txt"),
            "0 2 2\n+ 1 2\n0 2 2\n+ 1 2\n- 1 2\n0 2 2\n",
        )
        .unwrap();

        let out = run(&args(&format!(
            "update {graph_arg} {ops_arg} --k 2 --workers 2 --stats-json {stats_arg} --trace 2"
        )))
        .expect("update succeeds");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec![
                "0 2 2 unreachable",
                "+ 1 2 applied epoch=1",
                "0 2 2 reachable",
                "+ 1 2 noop epoch=1",
                "- 1 2 applied epoch=2",
                "0 2 2 unreachable",
            ],
            "{out}"
        );
        let stats = std::fs::read_to_string(&stats_arg).unwrap();
        for needle in [
            "\"queries\":3",
            "\"mutations\":3",
            "\"applied\":2",
            "\"noops\":1",
            "\"epoch\":2",
            "\"rows_per_update\":",
            "\"rows_coalesced\":",
            "\"updates_per_sec\":",
        ] {
            assert!(stats.contains(needle), "missing {needle} in {stats}");
        }

        // Out-of-range query vertices are rejected; unknown flags too.
        std::fs::write(dir.join("ops.txt"), "0 99 2\n").unwrap();
        assert!(run(&args(&format!("update {graph_arg} {ops_arg}"))).is_err());
        assert!(run(&args(&format!("update {graph_arg} {ops_arg} --frob 1"))).is_err());
        assert!(run(&args(&format!("update {graph_arg} {ops_arg} --k 0"))).is_err());
        for f in ["g.txt", "ops.txt", "stats.json"] {
            std::fs::remove_file(dir.join(f)).ok();
        }
    }

    #[test]
    fn serve_rejects_bad_flags_and_backends_before_binding() {
        assert!(run(&args("serve")).is_err());
        assert!(run(&args("serve g.txt extra.txt")).is_err());
        assert!(run(&args("serve g.txt --turbo on")).is_err());
        let err = run(&args("serve missing-file.txt --backend nonsense")).unwrap_err();
        // The graph is read before the backend is built, so a missing file
        // errors first; a bad backend errors on a real graph.
        assert!(!err.is_empty());
        let dir =
            std::env::temp_dir().join(format!("kreach-cli-serve-flags-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_arg = dir.join("g.txt").to_str().unwrap().to_string();
        std::fs::write(dir.join("g.txt"), "0 1\n").unwrap();
        let err = run(&args(&format!("serve {graph_arg} --backend nonsense"))).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        assert!(run(&args(&format!("serve {graph_arg} --k 0"))).is_err());
        std::fs::remove_file(dir.join("g.txt")).ok();
    }

    #[test]
    fn serve_answers_over_the_wire_and_drains_on_shutdown() {
        use kreach::server::client::BlockingClient;

        let dir =
            std::env::temp_dir().join(format!("kreach-cli-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_arg = dir.join("g.txt").to_str().unwrap().to_string();
        std::fs::write(dir.join("g.txt"), "0 1\n1 2\n").unwrap();

        // Derive a port from the PID to avoid collisions across test
        // processes; retry a few times in case it is taken.
        let base = 21000 + (std::process::id() % 20000) as u16;
        let mut served = None;
        for attempt in 0..10u16 {
            let port = base.wrapping_add(attempt * 7).max(1024);
            let command = format!(
                "serve {graph_arg} --port {port} --backend dynamic --k 2 --workers 1 \
                 --handlers 2 --max-inflight 8 --neg-ttl 60000 --trace 2 --slow-query-us 1"
            );
            let thread = std::thread::spawn(move || run(&args(&command)));
            // Wait for the listener to come up (or the thread to fail).
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            let client = loop {
                match BlockingClient::connect(("127.0.0.1", port)) {
                    Ok(client) => break Some(client),
                    Err(_) if thread.is_finished() || std::time::Instant::now() > deadline => {
                        break None
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                }
            };
            match client {
                Some(client) => {
                    served = Some((thread, client));
                    break;
                }
                None => {
                    let _ = thread.join(); // bind failed; try the next port
                }
            }
        }
        let (thread, mut client) = served.expect("no bindable port found");
        assert_eq!(
            client.get("/reach?s=0&t=2&k=2").unwrap().body_text(),
            "0 2 2 reachable\n"
        );
        let response = client.post("/update", b"+ 2 0\n0 0 2\n").unwrap();
        assert!(response.is_ok(), "{}", response.body_text());
        assert_eq!(client.post("/shutdown", &[]).unwrap().status, 202);
        let output = thread.join().unwrap().expect("serve exits cleanly");
        assert!(output.contains("drained clean=true"), "{output}");
        assert!(output.contains("mutations"), "{output}");
        // With a 1µs threshold every request is slow, so the drain summary
        // must report a non-zero slow-query count.
        assert!(output.contains("slow queries"), "{output}");
        assert!(!output.contains(" 0 slow queries"), "{output}");
        std::fs::remove_file(dir.join("g.txt")).ok();
    }

    #[test]
    fn bench_serve_emits_json_with_runs_and_speedup() {
        let out = run(&args(
            "bench-serve --dataset AgroCyc --scale 60 --k 3 --queries 800 --workers 1,2",
        ))
        .expect("bench-serve succeeds");
        for needle in [
            "\"dataset\":\"AgroCyc\"",
            "\"runs\":[",
            "\"queries_per_sec\"",
            "\"speedup\"",
        ] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
        assert_eq!(
            out.matches("\"workers\"").count(),
            2,
            "two sweep entries: {out}"
        );
        assert!(run(&args("bench-serve --dataset NotADataset")).is_err());
        assert!(run(&args("bench-serve extra-positional")).is_err());
    }

    #[test]
    fn build_rejects_bad_cover_strategy_and_missing_flags() {
        assert!(run(&args("build graph.txt --k 3")).is_err());
        assert!(run(&args("build graph.txt --output x.idx")).is_err());
        assert!(cmd_build(&["g.txt", "--k", "3", "--output", "x", "--cover", "bogus"]).is_err());
        assert!(run(&args("generate NotADataset --output x")).is_err());
    }

    #[test]
    fn witness_descriptions_are_informative() {
        assert!(describe(QueryWitness::Identity).contains("equals"));
        assert!(describe(QueryWitness::DirectEdge).contains("direct"));
        assert!(describe(QueryWitness::IndexEdge { weight: 2 }).contains("weight 2"));
        assert!(describe(QueryWitness::ThroughCoverPair {
            first: VertexId(1),
            last: VertexId(2),
            weight: 1
        })
        .contains("1 .. 2"));
    }
}
