//! # kreach
//!
//! A reproduction of *K-Reach: Who is in Your Small World* (Cheng, Shang,
//! Cheng, Wang, Yu; PVLDB 5(11), 2012): a vertex-cover-based index for
//! answering **k-hop reachability** queries — "is there a directed path of at
//! most k edges from s to t?" — on directed, unweighted graphs.
//!
//! This crate is a thin facade over the workspace members:
//!
//! * [`graph`] ([`kreach_graph`]) — the graph substrate: the [`GraphView`]
//!   storage seam with its two backends (frozen CSR and copy-on-write
//!   versioned adjacency), traversals, SCC/DAG condensation, metrics,
//!   generators, edge-list I/O.
//!
//! [`GraphView`]: kreach_graph::GraphView
//! * [`core`] ([`kreach_core`]) — the paper's contribution: the k-reach and
//!   (h,k)-reach indexes, vertex covers, general-k families, serialization.
//! * [`baselines`] ([`kreach_baselines`]) — the systems the paper compares
//!   against: online BFS, GRAIL, compressed transitive closure, tree cover,
//!   and a 2-hop distance labeling.
//! * [`datasets`] ([`kreach_datasets`]) — synthetic stand-ins for the 15
//!   evaluation datasets and the random query workloads.
//! * [`obs`] ([`kreach_obs`]) — the observability layer: structured query
//!   tracing, per-case latency accounting, the slow-query log, and the
//!   Prometheus text renderer behind `GET /metrics`.
//! * [`engine`] ([`kreach_engine`]) — the serving layer: a concurrent batch
//!   query engine with a fixed worker pool and a sharded LRU result cache.
//! * [`server`] ([`kreach_server`]) — the network front end: an HTTP/1.1 +
//!   line-protocol listener over the batch engine with admission control
//!   and graceful drain (`kreach serve`).
//! * [`store`] ([`kreach_store`]) — the durable-state subsystem: index
//!   format v3, the epoch-keyed mutation WAL, and checkpoint/restore for
//!   `kreach serve --data-dir` (acked updates survive `kill -9`).
//!
//! ## Example
//!
//! ```
//! use kreach::prelude::*;
//!
//! // Who can I influence within 2 hops?
//! let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 3)]);
//! let index = KReachIndex::build(&g, 2, BuildOptions::default());
//! assert!(index.query(&g, VertexId(0), VertexId(3)));   // direct shortcut
//! assert!(index.query(&g, VertexId(0), VertexId(4)));   // 0 -> 3 -> 4
//! assert!(!index.query(&g, VertexId(1), VertexId(4)));  // needs 3 hops
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kreach_baselines as baselines;
pub use kreach_core as core;
pub use kreach_datasets as datasets;
pub use kreach_engine as engine;
pub use kreach_graph as graph;
pub use kreach_obs as obs;
pub use kreach_server as server;
pub use kreach_store as store;

/// The most commonly used items from every workspace crate.
///
/// The engine's backend trait is deliberately *not* glob-exported here: it
/// shares the name `Reachability` with the classic-reachability baseline
/// trait. Engine users import from [`crate::engine`] explicitly.
pub mod prelude {
    pub use kreach_baselines::{
        BidirectionalBfs, DistanceIndex, Grail, IntervalTransitiveClosure, KHopReachability,
        OnlineBfs, Reachability, TreeCover,
    };
    pub use kreach_core::prelude::*;
    pub use kreach_datasets::{
        all_specs, spec_by_name, DatasetSpec, QueryWorkload, WorkloadConfig,
    };
    pub use kreach_engine::{BatchEngine, EngineConfig, EngineStats, Query, QueryBatch};
    pub use kreach_graph::{DiGraph, GraphBuilder, GraphView, VersionedAdjGraph, VertexId};
}
